"""Deadlock/livelock watchdog with path-level hang diagnosis.

Today a mis-built design hangs silently: every blocked ``In.pop()`` /
``Out.push()`` is a ``while True: yield`` spin the kernel cannot tell
apart from useful work, so the simulation idles until ``until`` /
``max_steps`` with zero indication of *which* thread is stuck on *which*
channel.  The :class:`Watchdog` turns that into a structured failure:

* **deadlock** — every live design thread is registered blocked in a
  pop/push handshake and no token moved between two consecutive checks;
  nothing left in the schedule can unblock anyone.
* **livelock / starvation** — threads are alive (spinning, sleeping,
  polling) but no watched channel has moved a single token for a full
  ``window`` of cycles.
* **budget** — the design did not finish within ``max_cycles`` (the
  campaign runner's per-point cycle budget).

Instead of hanging, ``sim.run(...)`` raises :class:`HangError` carrying
a :class:`HangDiagnosis`: per-thread blocked state with the dotted
design path of the offending channel (PR 3's hierarchy), channel
occupancy snapshots, and the wait-for cycle between blocked threads when
one exists.  The diagnosis renders as text (:meth:`HangDiagnosis.format`)
and exports as JSONL records through :func:`repro.observe.write_jsonl`.

Zero-cost when off: ``sim.watchdog`` is ``None`` by default and the only
hook sites are the *failure* paths of blocking port operations plus one
``is None`` check selecting the kernel's delta-loop variant.

Usage::

    from repro.faults import Watchdog, HangError

    sim = ...build design...
    Watchdog(sim, clk, window=2000, max_cycles=50_000)
    try:
        sim.run(until=1_000_000)
    except HangError as exc:
        print(exc.diagnosis.format())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..design.elaborate import elaborate
from ..design.hierarchy import design_path
from ..kernel.simulator import SimulationError, Thread

__all__ = ["Watchdog", "HangError", "HangDiagnosis", "BlockedThread",
           "ChannelSnapshot"]


@dataclass
class BlockedThread:
    """One thread stuck in a pop/push handshake."""

    thread: str          # dotted thread name (e.g. ``chip.pe3.ctl``)
    op: str              # "pop" | "push"
    channel: str         # dotted channel path (e.g. ``chip.pe3.spad.in``)
    since_cycle: int     # clock cycle of the first failed attempt
    waited_cycles: int   # cycles spent blocked at diagnosis time

    def to_record(self) -> dict:
        return {"type": "hang.thread", "thread": self.thread, "op": self.op,
                "channel": self.channel, "since_cycle": self.since_cycle,
                "waited_cycles": self.waited_cycles}


@dataclass
class ChannelSnapshot:
    """Occupancy snapshot of one channel at diagnosis time."""

    path: str
    kind: str
    occupancy: int
    capacity: Optional[int]
    stalled: bool        # an injected stall probability is active

    def to_record(self) -> dict:
        return {"type": "hang.channel", "path": self.path, "kind": self.kind,
                "occupancy": self.occupancy, "capacity": self.capacity,
                "stalled": self.stalled}


@dataclass
class HangDiagnosis:
    """Everything the watchdog knows about a hang, structured."""

    kind: str                       # "deadlock" | "livelock" | "budget"
    cycle: int                      # watchdog-clock cycle of the diagnosis
    now: int                        # simulation time (ticks)
    window: Optional[int]           # livelock window (cycles), if relevant
    reason: str                     # one-line human summary
    threads: List[BlockedThread] = field(default_factory=list)
    channels: List[ChannelSnapshot] = field(default_factory=list)
    wait_cycle: List[str] = field(default_factory=list)

    def to_records(self) -> List[dict]:
        """JSONL export: one header record plus per-thread/-channel rows.

        Feed straight into :func:`repro.observe.write_jsonl`.
        """
        head = {"type": "hang", "kind": self.kind, "cycle": self.cycle,
                "now": self.now, "window": self.window,
                "reason": self.reason, "wait_cycle": self.wait_cycle}
        return ([head] + [t.to_record() for t in self.threads]
                + [c.to_record() for c in self.channels])

    def format(self) -> str:
        """Multi-line human-readable rendering (the "how to read a hang
        diagnosis" layout in ``docs/ROBUSTNESS.md``)."""
        lines = [f"{self.kind.upper()} at cycle {self.cycle} "
                 f"(t={self.now}): {self.reason}"]
        if self.threads:
            lines.append("blocked threads:")
            for t in self.threads:
                lines.append(f"  {t.thread}: blocked in {t.op}() on "
                             f"{t.channel} for {t.waited_cycles} cycles "
                             f"(since cycle {t.since_cycle})")
        if self.wait_cycle:
            lines.append("wait-for cycle:")
            lines.append("  " + " -> ".join(self.wait_cycle
                                            + [self.wait_cycle[0]]))
        if self.channels:
            lines.append("channel occupancy:")
            for c in self.channels:
                cap = f"/{c.capacity}" if c.capacity is not None else ""
                stall = "  [stall injected]" if c.stalled else ""
                lines.append(f"  {c.path} <{c.kind}>: "
                             f"{c.occupancy}{cap}{stall}")
        return "\n".join(lines)


class HangError(SimulationError):
    """A watchdog-diagnosed hang.  ``.diagnosis`` is the full story."""

    def __init__(self, diagnosis: HangDiagnosis):
        super().__init__(diagnosis.format())
        self.diagnosis = diagnosis


class _BlockedState:
    """Internal per-thread blocked-handshake bookkeeping."""

    __slots__ = ("thread", "port", "channel", "op", "since_cycle")

    def __init__(self, thread, port, channel, op, since_cycle):
        self.thread = thread
        self.port = port
        self.channel = channel
        self.op = op
        self.since_cycle = since_cycle


class Watchdog:
    """Progress monitor attached to one simulator.

    ``clock`` is the cadence reference (checks run every ``check_every``
    of its cycles; default ``window // 4``).  ``window`` is the livelock
    horizon: that many cycles with zero token progress on any watched
    channel raises a starvation diagnosis — so any design that moves at
    least one token per ``window`` can never trip it, even across check
    boundaries.  ``max_cycles`` optionally bounds the whole run.

    Deadlock needs two consecutive zero-progress checks with every live
    design thread blocked, which filters out in-transit messages still
    maturing; while an injected stall is active on any watched channel
    the deadlock verdict is deferred to the livelock window (a stalled
    channel can always unblock when the stall ends).
    """

    def __init__(self, sim, clock, *, window: int = 2000,
                 check_every: Optional[int] = None,
                 max_cycles: Optional[int] = None):
        if window < 2:
            raise ValueError(f"window must be >= 2 cycles, got {window}")
        if sim.watchdog is not None:
            raise ValueError("simulator already has a watchdog attached")
        self.sim = sim
        self.clock = clock
        self.window = window
        if check_every is not None:
            self.check_every = check_every
        else:
            self.check_every = max(1, window // 4)
            if max_cycles is not None:
                # Keep the budget timely even under a huge livelock
                # window: check at least every quarter of the budget.
                self.check_every = min(self.check_every,
                                       max(1, max_cycles // 4))
        if self.check_every >= window:
            raise ValueError("check_every must be smaller than window")
        self.max_cycles = max_cycles
        self._blocked: Dict[int, _BlockedState] = {}
        self._watched: Optional[list] = None
        self._start_cycle = clock.cycles
        self._last_total: Optional[int] = None
        self._idle_cycles = 0
        self._deadlock_strikes = 0
        sim.watchdog = self
        self._thread = sim.add_thread(self._run(), clock, name="watchdog")

    # ------------------------------------------------------------------
    # port hooks (called from In.pop / Out.push failure paths)
    # ------------------------------------------------------------------
    def on_block(self, port, channel, op: str):
        """A blocking port operation failed its first attempt."""
        thread = self.sim._current
        if thread is None or thread is self._thread:
            return None
        clk = thread.clock if thread.clock is not None else self.clock
        state = _BlockedState(thread, port, channel, op, clk.cycles)
        self._blocked[id(thread)] = state
        return state

    def on_unblock(self, token) -> None:
        """The blocked operation finally completed."""
        self._blocked.pop(id(token.thread), None)

    # ------------------------------------------------------------------
    # the monitor thread
    # ------------------------------------------------------------------
    def _run(self) -> Generator:
        step = self.check_every
        while True:
            yield step
            if not self._check():
                return  # all design threads finished — stand down

    def _live_threads(self) -> List[Thread]:
        helpers = getattr(self.sim, "_fault_helper_threads", None)
        return [t for t in self.sim._threads
                if not t.done and t is not self._thread
                and (helpers is None or id(t) not in helpers)]

    def _discover(self) -> list:
        """All channel-like objects registered in the design hierarchy."""
        chans = []
        for inst in self.sim.design.root.walk():
            chans.extend(inst.channels)
        return chans

    @staticmethod
    def _progress_of(chan) -> int:
        stats = getattr(chan, "stats", None)
        if stats is not None:
            return stats.transfers
        if hasattr(chan, "transfers_out"):
            return chan.transfers_in + chan.transfers_out
        core = getattr(chan, "core", None)
        if core is not None and hasattr(core, "transfers_out"):
            return core.transfers_in + core.transfers_out
        t = getattr(chan, "transfers", 0)
        return t if isinstance(t, int) else 0

    @staticmethod
    def _stall_active(chan) -> bool:
        return getattr(chan, "_stall_probability", 0.0) > 0.0

    def _check(self) -> bool:
        """One progress check.  Returns False when nothing is live."""
        live = self._live_threads()
        if not live:
            return False
        if self._watched is None:
            self._watched = self._discover()
        total = sum(self._progress_of(c) for c in self._watched)
        progressed = self._last_total is None or total != self._last_total
        self._last_total = total
        cycle = self.clock.cycles

        if self.max_cycles is not None \
                and cycle - self._start_cycle >= self.max_cycles:
            raise HangError(self._diagnose(
                "budget",
                f"design not finished after {self.max_cycles} cycles "
                f"({len(live)} threads still live)"))

        if progressed:
            self._idle_cycles = 0
            self._deadlock_strikes = 0
            return True
        self._idle_cycles += self.check_every

        all_blocked = all(id(t) in self._blocked for t in live)
        stalled = any(self._stall_active(c) for c in self._watched)
        if all_blocked and not stalled:
            self._deadlock_strikes += 1
            if self._deadlock_strikes >= 2:
                raise HangError(self._diagnose(
                    "deadlock",
                    f"all {len(live)} live threads blocked in channel "
                    f"handshakes with zero token progress"))
        else:
            self._deadlock_strikes = 0

        if self._idle_cycles >= self.window:
            raise HangError(self._diagnose(
                "livelock",
                f"no token progress on any watched channel for "
                f"{self._idle_cycles} cycles (window={self.window})"))
        return True

    # ------------------------------------------------------------------
    # diagnosis
    # ------------------------------------------------------------------
    def _diagnose(self, kind: str, reason: str) -> HangDiagnosis:
        states = list(self._blocked.values())
        # Drop stale entries of threads that have since finished.
        states = [s for s in states if not s.thread.done]
        threads = []
        for s in states:
            clk = s.thread.clock if s.thread.clock is not None else self.clock
            threads.append(BlockedThread(
                thread=s.thread.name, op=s.op,
                channel=design_path(s.channel),
                since_cycle=s.since_cycle,
                waited_cycles=max(0, clk.cycles - s.since_cycle)))
        threads.sort(key=lambda t: t.thread)
        blocked_chan_ids = {id(s.channel) for s in states}
        snapshots = []
        for c in (self._watched or ()):
            occ = getattr(c, "occupancy", None)
            if occ is None:
                continue
            if id(c) in blocked_chan_ids or occ > 0 or self._stall_active(c):
                snapshots.append(ChannelSnapshot(
                    path=design_path(c),
                    kind=getattr(c, "kind", type(c).__name__),
                    occupancy=occ,
                    capacity=getattr(c, "capacity", None),
                    stalled=self._stall_active(c)))
        snapshots.sort(key=lambda s: s.path)
        return HangDiagnosis(
            kind=kind, cycle=self.clock.cycles, now=self.sim.now,
            window=self.window if kind == "livelock" else None,
            reason=reason, threads=threads, channels=snapshots,
            wait_cycle=self._wait_cycle(states))

    def _wait_cycle(self, states: List[_BlockedState]) -> List[str]:
        """Find a cycle in the wait-for graph of blocked threads.

        A thread blocked popping channel C waits on the threads of every
        instance owning a producer port of C; blocked pushing, on the
        consumer instances' threads (endpoints from PR 3's elaboration).
        """
        if not states:
            return []
        try:
            graph = elaborate(self.sim)
        except Exception:  # pragma: no cover - diagnosis must not crash
            return []
        producers: Dict[int, set] = {}
        consumers: Dict[int, set] = {}
        for rec in graph.channels:
            producers[id(rec.channel)] = {
                id(t) for p in rec.producers for t in p.owner.threads}
            consumers[id(rec.channel)] = {
                id(t) for p in rec.consumers for t in p.owner.threads}
        by_tid = {id(s.thread): s for s in states}
        edges: Dict[int, set] = {}
        for tid, s in by_tid.items():
            peers = (producers if s.op == "pop" else consumers).get(
                id(s.channel), set())
            edges[tid] = {p for p in peers if p in by_tid and p != tid}
        # Iterative DFS with colouring to extract one cycle.
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {tid: WHITE for tid in by_tid}
        for start in sorted(by_tid, key=lambda t: by_tid[t].thread.name):
            if colour[start] != WHITE:
                continue
            stack = [(start, iter(sorted(edges.get(start, ()))))]
            path = [start]
            colour[start] = GREY
            while stack:
                tid, it = stack[-1]
                advanced = False
                for nxt in it:
                    if colour[nxt] == GREY:
                        cycle = path[path.index(nxt):]
                        return [f"{by_tid[t].thread.name} "
                                f"--{by_tid[t].op}--> "
                                f"{design_path(by_tid[t].channel)}"
                                for t in cycle]
                    if colour[nxt] == WHITE:
                        colour[nxt] = GREY
                        path.append(nxt)
                        stack.append((nxt, iter(sorted(edges.get(nxt, ())))))
                        advanced = True
                        break
                if not advanced:
                    colour[tid] = BLACK
                    path.pop()
                    stack.pop()
        return []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Watchdog(window={self.window}, "
                f"check_every={self.check_every}, "
                f"blocked={len(self._blocked)})")
