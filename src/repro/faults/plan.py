"""Seeded deterministic fault-injection plans.

A :class:`FaultPlan` is a declarative list of fault directives bound to
dotted design paths, applied to a built simulator just before it runs::

    plan = FaultPlan(seed=7)
    plan.drop("chip.link", probability=0.05)
    plan.clock_jitter("tx", amplitude=2, every=13)
    applied = plan.apply(sim)
    sim.run(until=...)
    applied.counters()   # {"chip.link": {"drops": 3, ...}, ...}

Fault classes (the menu the campaign runner draws from):

* **drop** — a push is accepted by the handshake but the message is
  lost, the classic faulty-wire model for an LI channel.
* **duplicate** — a push enqueues the message twice (a replayed
  handshake beat).
* **corrupt** — the payload is transformed at push time; the default
  corrupter flips one random bit of an int (or of a
  :class:`~repro.connections.packet.Flit` payload), the single-bit
  model XOR checksums are guaranteed to detect.
* **stall burst** — a bounded window of random backpressure through the
  channel's :meth:`set_stall` verification hook.
* **clock jitter / drift** — period wobble or cumulative skew on a
  named clock, exercising GALS crossings under realistic clock trees.

Everything is derived from the plan seed through named
``random.Random`` streams (string seeding is deterministic and
independent of ``PYTHONHASHSEED``), and each directive freezes its own
sub-seed at creation time — so removing one directive during shrinking
never changes the behaviour of the survivors.

Zero-cost when off: channels carry ``_faults = None`` and pay one
attribute load per push; clock/stall faults are ordinary kernel threads
that exist only while a plan is applied.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..connections.packet import Flit
from ..design.hierarchy import design_path

__all__ = ["FaultDirective", "FaultPlan", "AppliedFaults", "ChannelFaults",
           "default_corrupter"]

#: Fault kinds that attach to a channel's push path.
_CHANNEL_KINDS = ("drop", "duplicate", "corrupt", "stall_burst")
#: Fault kinds that attach to a clock.
_CLOCK_KINDS = ("clock_jitter", "clock_drift")


@dataclass(frozen=True)
class FaultDirective:
    """One fault, bound to one target, with its own frozen sub-seed."""

    kind: str
    target: str                       # dotted channel path or clock name
    seed: int                         # private seed for this directive
    args: Tuple[Tuple[str, Any], ...]  # sorted (name, value) pairs

    def arg(self, name: str) -> Any:
        for key, value in self.args:
            if key == name:
                return value
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "target": self.target,
                "seed": self.seed, "args": dict(self.args)}


def default_corrupter(payload: Any, rng: random.Random) -> Any:
    """Flip one random bit of an int payload (single-bit upset model).

    :class:`Flit` payloads are corrupted in place of their ``payload``
    field so the flit keeps routing correctly — the corruption must be
    caught by the end-to-end checksum, not by a router crash.  Non-int
    payloads are returned unchanged (harnesses with richer message types
    pass a custom corrupter).
    """
    if isinstance(payload, Flit):
        flipped = default_corrupter(payload.payload, rng)
        import dataclasses
        return dataclasses.replace(payload, payload=flipped)
    if isinstance(payload, bool) or not isinstance(payload, int):
        return payload
    bit = rng.randrange(max(payload.bit_length(), 8))
    return payload ^ (1 << bit)


class ChannelFaults:
    """Per-channel fault state installed as ``chan._faults``.

    ``on_push(msg)`` returns ``(action, msg)`` with action ``0`` =
    deliver normally, ``1`` = drop, ``2`` = duplicate.  Corruption is
    applied first (a corrupted message can still be dropped), and a
    corruption is only counted when the payload actually changed —
    otherwise a no-op corrupter would inflate the detected-fault budget
    the campaign classifier trusts.
    """

    __slots__ = ("channel", "_drop_p", "_dup_p", "_corrupt_p",
                 "_drop_rng", "_dup_rng", "_corrupt_rng", "_corrupter",
                 "drops", "duplicates", "corruptions")

    def __init__(self, channel):
        self.channel = channel
        self._drop_p = 0.0
        self._dup_p = 0.0
        self._corrupt_p = 0.0
        self._drop_rng: Optional[random.Random] = None
        self._dup_rng: Optional[random.Random] = None
        self._corrupt_rng: Optional[random.Random] = None
        self._corrupter: Callable = default_corrupter
        self.drops = 0
        self.duplicates = 0
        self.corruptions = 0

    def on_push(self, msg: Any) -> Tuple[int, Any]:
        if self._corrupt_p > 0.0 and self._corrupt_rng.random() < self._corrupt_p:
            mutated = self._corrupter(msg, self._corrupt_rng)
            if mutated is not msg and mutated != msg:
                self.corruptions += 1
                msg = mutated
        if self._drop_p > 0.0 and self._drop_rng.random() < self._drop_p:
            self.drops += 1
            return 1, msg
        if self._dup_p > 0.0 and self._dup_rng.random() < self._dup_p:
            self.duplicates += 1
            return 2, msg
        return 0, msg

    def counters(self) -> dict:
        return {"drops": self.drops, "duplicates": self.duplicates,
                "corruptions": self.corruptions}

    # -- snapshot state protocol (see repro.kernel.snapshot) -----------
    def _snapshot_state(self) -> dict:
        return {
            "probabilities": (self._drop_p, self._dup_p, self._corrupt_p),
            "rngs": tuple(rng.getstate() if rng is not None else None
                          for rng in (self._drop_rng, self._dup_rng,
                                      self._corrupt_rng)),
            "corrupter": self._corrupter,
            "counters": (self.drops, self.duplicates, self.corruptions),
        }

    def _restore_state(self, state: dict) -> None:
        self._drop_p, self._dup_p, self._corrupt_p = state["probabilities"]
        rngs = []
        for rng_state in state["rngs"]:
            if rng_state is None:
                rngs.append(None)
            else:
                rng = random.Random()
                rng.setstate(rng_state)
                rngs.append(rng)
        self._drop_rng, self._dup_rng, self._corrupt_rng = rngs
        self._corrupter = state["corrupter"]
        self.drops, self.duplicates, self.corruptions = state["counters"]


class AppliedFaults:
    """Handle returned by :meth:`FaultPlan.apply`.

    Maps dotted channel paths to their :class:`ChannelFaults` so the
    campaign classifier can compare observed message loss against the
    injected-fault budget.
    """

    def __init__(self, plan: "FaultPlan", channels: Dict[str, ChannelFaults],
                 clock_targets: List[str]):
        self.plan = plan
        self.channels = channels
        self.clock_targets = clock_targets

    def lossy_events(self) -> int:
        """Injected events that may legitimately change what arrives."""
        return sum(f.drops + f.duplicates + f.corruptions
                   for f in self.channels.values())

    def counters(self) -> dict:
        return {path: f.counters() for path, f in sorted(self.channels.items())}


class FaultPlan:
    """A seeded, shrinkable schedule of fault directives."""

    def __init__(self, seed: int = 0,
                 directives: Optional[List[FaultDirective]] = None,
                 corrupters: Optional[Dict[str, Callable]] = None):
        self.seed = seed
        self.directives: List[FaultDirective] = list(directives or ())
        #: Per-target corrupter overrides (harness-specific payloads).
        self.corrupters: Dict[str, Callable] = dict(corrupters or ())
        self._rng = random.Random(f"faultplan:{seed}")

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def _add(self, kind: str, target: str, **args) -> "FaultPlan":
        directive = FaultDirective(
            kind=kind, target=target,
            seed=self._rng.randrange(2 ** 32),
            args=tuple(sorted(args.items())))
        self.directives.append(directive)
        return self

    def drop(self, target: str, *, probability: float) -> "FaultPlan":
        """Lose each pushed message with the given probability."""
        _check_probability(probability)
        return self._add("drop", target, probability=probability)

    def duplicate(self, target: str, *, probability: float) -> "FaultPlan":
        """Enqueue each pushed message twice with the given probability."""
        _check_probability(probability)
        return self._add("duplicate", target, probability=probability)

    def corrupt(self, target: str, *, probability: float,
                corrupter: Optional[Callable] = None) -> "FaultPlan":
        """Transform each pushed payload with the given probability."""
        _check_probability(probability)
        if corrupter is not None:
            self.corrupters[target] = corrupter
        return self._add("corrupt", target, probability=probability)

    def stall_burst(self, target: str, *, start: int, length: int,
                    probability: float = 0.5) -> "FaultPlan":
        """Random backpressure on the target for ``length`` cycles
        beginning ``start`` cycles in (via the ``set_stall`` hook)."""
        _check_probability(probability)
        if start < 0 or length < 1:
            raise ValueError(
                f"stall burst needs start >= 0 and length >= 1, "
                f"got start={start}, length={length}")
        return self._add("stall_burst", target, start=start, length=length,
                         probability=probability)

    def clock_jitter(self, clock_name: str, *, amplitude: int,
                     every: int = 1) -> "FaultPlan":
        """Random period wobble of up to ±``amplitude`` ticks, re-drawn
        every ``every`` cycles (cycle-to-cycle jitter)."""
        if amplitude < 1 or every < 1:
            raise ValueError("amplitude and every must be >= 1")
        return self._add("clock_jitter", clock_name, amplitude=amplitude,
                         every=every)

    def clock_drift(self, clock_name: str, *, rate: int,
                    every: int = 64) -> "FaultPlan":
        """Cumulative skew: the period shifts by ``rate`` ticks every
        ``every`` cycles, bounded to [nominal/2, nominal*2]."""
        if rate == 0 or every < 1:
            raise ValueError("rate must be nonzero and every >= 1")
        return self._add("clock_drift", clock_name, rate=rate, every=every)

    # ------------------------------------------------------------------
    # introspection / serialization
    # ------------------------------------------------------------------
    def describe(self) -> List[dict]:
        """JSON-able directive list (campaign records embed this)."""
        return [d.to_dict() for d in self.directives]

    def without(self, index: int) -> "FaultPlan":
        """Copy of this plan minus one directive (shrinking step).

        Sub-seeds were frozen at creation, so the surviving directives
        behave identically in the smaller plan.
        """
        directives = [d for i, d in enumerate(self.directives) if i != index]
        return FaultPlan(self.seed, directives=directives,
                         corrupters=dict(self.corrupters))

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, sim) -> AppliedFaults:
        """Install every directive on the built design in ``sim``.

        Channel targets are resolved by dotted design path (unique plain
        names also match); clock targets by clock name.  Injector
        threads (stall bursts, jitter, drift) are registered in
        ``sim._fault_helper_threads`` so the watchdog's deadlock census
        ignores them.
        """
        channels: Dict[str, ChannelFaults] = {}
        clock_targets: List[str] = []
        helpers = getattr(sim, "_fault_helper_threads", None)
        if helpers is None:
            helpers = sim._fault_helper_threads = set()
        for directive in self.directives:
            if directive.kind in _CLOCK_KINDS:
                clock = _resolve_clock(sim, directive.target)
                # Factory-style registration (directives freeze their
                # sub-seeds, so a re-created injector generator behaves
                # identically) keeps fault-plan runs snapshot-eligible.
                run = (_jitter_run if directive.kind == "clock_jitter"
                       else _drift_run)
                thread = sim.add_thread(
                    lambda run=run, clock=clock, d=directive: run(clock, d),
                    clock,
                    name=f"fault.{directive.kind}.{clock.name}")
                helpers.add(id(thread))
                clock_targets.append(directive.target)
                continue
            chan, path = _resolve_channel(sim, directive.target)
            if directive.kind == "stall_burst":
                clock = getattr(chan, "clock", None) or _any_clock(sim)
                thread = sim.add_thread(
                    lambda chan=chan, d=directive: _stall_burst_run(chan, d),
                    clock,
                    name=f"fault.stall.{path}")
                helpers.add(id(thread))
                continue
            host = _fault_host(chan, path)
            faults = channels.get(path)
            if faults is None:
                faults = host._faults
                if faults is None:
                    faults = host._faults = ChannelFaults(host)
                channels[path] = faults
            p = directive.arg("probability")
            rng = random.Random(f"fault:{directive.kind}:{directive.seed}")
            if directive.kind == "drop":
                faults._drop_p = p
                faults._drop_rng = rng
            elif directive.kind == "duplicate":
                faults._dup_p = p
                faults._dup_rng = rng
            else:  # corrupt
                faults._corrupt_p = p
                faults._corrupt_rng = rng
                if directive.target in self.corrupters:
                    faults._corrupter = self.corrupters[directive.target]
        return AppliedFaults(self, channels, clock_targets)


def _check_probability(probability: float) -> None:
    if not 0.0 < probability <= 1.0:
        raise ValueError(
            f"fault probability must be in (0,1], got {probability}")


def _resolve_channel(sim, target: str):
    """Find a channel by dotted path (or unique plain name)."""
    design = getattr(sim, "design", None)
    if design is None:
        raise ValueError("fault plans need a simulator with a design "
                         "hierarchy (sim.design)")
    by_name = []
    for inst in design.root.walk():
        for chan in inst.channels:
            path = design_path(chan)
            if path == target:
                return chan, path
            if getattr(chan, "name", None) == target:
                by_name.append((chan, path))
    if len(by_name) == 1:
        return by_name[0]
    if by_name:
        paths = ", ".join(sorted(p for _, p in by_name))
        raise ValueError(f"fault target {target!r} is ambiguous: {paths}")
    raise ValueError(f"fault target {target!r} matches no channel in the "
                     f"design hierarchy")


def _fault_host(chan, path: str):
    """Where the ChannelFaults hook lives: the channel itself, or the
    facade-designated host (e.g. a GalsLink's tx-side buffer)."""
    if hasattr(chan, "_faults"):
        return chan
    host = getattr(chan, "fault_host", None)
    if host is not None and hasattr(host, "_faults"):
        return host
    raise ValueError(f"channel {path!r} ({type(chan).__name__}) does not "
                     f"support push-fault injection")


def _resolve_clock(sim, name: str):
    for clock in sim._clocks:
        if clock.name == name:
            return clock
    known = ", ".join(sorted(c.name for c in sim._clocks))
    raise ValueError(f"fault target clock {name!r} not found "
                     f"(clocks: {known})")


def _any_clock(sim):
    if not sim._clocks:
        raise ValueError("simulator has no clocks to schedule a fault on")
    return sim._clocks[0]


# ----------------------------------------------------------------------
# injector threads
# ----------------------------------------------------------------------
def _stall_burst_run(chan, directive: FaultDirective) -> Generator:
    """Finite injector: stall window [start, start+length), then a full
    reset through ``set_stall(0.0)``."""
    start = directive.arg("start")
    if start:
        yield start
    chan.set_stall(directive.arg("probability"), seed=directive.seed)
    yield directive.arg("length")
    chan.set_stall(0.0)


def _jitter_run(clock, directive: FaultDirective) -> Generator:
    """Infinite injector: re-draw the period in [nominal - A, nominal + A]
    every ``every`` cycles."""
    nominal = clock.period
    amplitude = directive.arg("amplitude")
    every = directive.arg("every")
    rng = random.Random(f"fault:clock_jitter:{directive.seed}")
    while True:
        clock.set_period(max(1, nominal + rng.randint(-amplitude, amplitude)))
        yield every


def _drift_run(clock, directive: FaultDirective) -> Generator:
    """Infinite injector: cumulative period skew, bounded to
    [nominal/2, nominal*2] so the sim cannot run away."""
    nominal = clock.period
    rate = directive.arg("rate")
    every = directive.arg("every")
    lo, hi = max(1, nominal // 2), nominal * 2
    period = nominal
    while True:
        yield every
        period = min(hi, max(lo, period + rate))
        clock.set_period(period)
