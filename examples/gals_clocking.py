#!/usr/bin/env python3
"""Fine-grained GALS clocking (Figure 4) in action.

Two clock domains with different frequencies and supply noise exchange
data through a pausible bisynchronous FIFO; the receiver's clock is
paused whenever a write lands inside a metastability window.  The same
traffic through a brute-force 2-flop synchronizer FIFO shows the latency
the pausible design saves, and the overhead tables quantify the area
cost (paper: < 3 % for typical partitions).

Run:  python examples/gals_clocking.py

No ``--backend`` flag here: adaptive per-domain clock generators are
outside the compiled backend's capability proof (each edge's period is
computed from a noise model), so this demo always runs on the threaded
kernel — see docs/COMPILED_BACKEND.md for the full eligibility table.
"""

from repro.connections import Buffer, In, Out
from repro.experiments import (
    format_overhead_table,
    partition_size_sweep,
    testchip_overhead,
)
from repro.gals import (
    BruteForceSyncFIFO,
    LocalClockGenerator,
    PausibleBisyncFIFO,
    SupplyNoise,
)
from repro.kernel import Simulator


def crossing_latency(fifo_cls, n=100):
    """Mean per-message crossing latency under sparse traffic.

    Messages are timestamped at injection; the consumer records
    arrival.  Sparse spacing isolates *latency* (the pausible design's
    advantage) from throughput, which both FIFOs sustain equally.
    """
    sim = Simulator()
    tx_gen = LocalClockGenerator(sim, "tx", nominal_period=909,
                                 noise=SupplyNoise(amplitude=0.05, seed=1))
    rx_gen = LocalClockGenerator(sim, "rx", nominal_period=1043,
                                 noise=SupplyNoise(amplitude=0.05, seed=2))
    fifo = fifo_cls(sim, tx_gen.clock, rx_gen.clock)
    in_ch = Buffer(sim, tx_gen.clock, capacity=2, name="in")
    out_ch = Buffer(sim, rx_gen.clock, capacity=2, name="out")
    fifo.in_port.bind(in_ch)
    fifo.out_port.bind(out_ch)
    src, dst = Out(in_ch), In(out_ch)
    latencies = []

    def producer():
        for i in range(n):
            yield from src.push((i, sim.now))
            yield 8  # sparse traffic: one message every ~8 tx cycles

    def consumer():
        for i in range(n):
            idx, sent_at = yield from dst.pop()
            assert idx == i, "CDC corrupted data!"
            latencies.append(sim.now - sent_at)

    sim.add_thread(producer(), tx_gen.clock, name="p")
    sim.add_thread(consumer(), rx_gen.clock, name="c")
    sim.run(until=n * 50_000)
    return sum(latencies) / len(latencies), fifo, rx_gen


def main() -> None:
    lat_pausible, pbf, rx = crossing_latency(PausibleBisyncFIFO)
    lat_brute, _, _ = crossing_latency(BruteForceSyncFIFO)
    print("per-message latency across a noisy 1.10 GHz -> 0.96 GHz crossing:")
    print(f"  pausible bisync FIFO:  {lat_pausible / 1000:6.2f} ns mean "
          f"({rx.clock.paused_edges} receiver-clock pauses, "
          f"{pbf.metastability_risks} metastability risks)")
    print(f"  2-flop synchronizer:   {lat_brute / 1000:6.2f} ns mean")
    print(f"  pausible advantage:    {100 * (1 - lat_pausible / lat_brute):.0f}% "
          f"lower crossing latency\n")

    print(format_overhead_table(partition_size_sweep(), testchip_overhead()))


if __name__ == "__main__":
    main()
