#!/usr/bin/env python3
"""Run ML/CV workloads on the prototype SoC (Figure 5).

Executes a CNN layer (conv2d), a k-means distance step, and a GEMM on
the full chip — RISC-V controller firmware, WHVC NoC, PE array, banked
global memory — and verifies every result bit-for-bit against golden
references.  Also re-runs one workload on the fine-grained GALS build
(per-node clock generators + pausible bisynchronous FIFO links) to show
the LI guarantee: identical results under asynchronous clocking.

Run:  python examples/soc_demo.py [--backend compiled]

``--backend compiled`` runs the fast-mode workloads under the
graph-compiled dispatch loop (docs/COMPILED_BACKEND.md) — identical
cycle counts, several times the wall-clock speed.  The GALS build is
outside the compiled backend's capability proof (per-node adaptive
clocks), so it always runs threaded and records that as its fallback
reason.
"""

import argparse

from repro.kernel import last_run, use_backend
from repro.workloads import (
    conv2d_workload,
    gemm_workload,
    kmeans_workload,
    run_workload,
    vector_scale_workload,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("threaded", "compiled"),
                        default="threaded",
                        help="simulation backend (results are identical)")
    args = parser.parse_known_args()[0]
    with use_backend(args.backend):
        _run_demos(report_backend=args.backend != "threaded")


def _run_demos(report_backend: bool = False) -> None:
    print("Prototype SoC: 16 PEs, RISC-V controller, 2 global memories\n")

    for workload in (conv2d_workload(height=8, width=12),
                     kmeans_workload(n_points=32, dim=2, k=2, n_pes=4),
                     gemm_workload(m=8, k=8, n=8)):
        soc = run_workload(workload)  # raises if output mismatches golden
        insns = soc.controller.core.instructions_retired
        print(f"{workload.name:16s} OK  {soc.elapsed_cycles:7,} cycles @1.1GHz "
              f"({workload.description}; controller retired {insns:,} instrs)")

    # Same workload, fine-grained GALS chip: 20 local clock generators
    # with +-2 % period spread and 5 % supply noise; pausible FIFOs on
    # every mesh link.  Results are bit-identical (LI correctness).
    workload = vector_scale_workload(n_pes=16, n_per_pe=32)
    sync = run_workload(workload)
    gals = run_workload(workload, gals=True, noise_amplitude=0.05)
    pauses = sum(g.clock.paused_edges for g in gals.clock_generators)
    print(f"\n{workload.name} on synchronous chip: {sync.elapsed_cycles:,} cycles")
    print(f"{workload.name} on GALS chip:        "
          f"{gals.finish_time // gals.CLOCK_PERIOD:,} equivalent cycles, "
          f"{pauses} pausible-clock pauses, results identical")
    if report_backend:
        backend, reason = last_run()
        print(f"\nlast run's simulation backend: {backend}"
              + (f" (fallback: {reason})" if reason else ""))


if __name__ == "__main__":
    main()
