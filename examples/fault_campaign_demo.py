#!/usr/bin/env python3
"""Fault-injection campaign demo: inject, detect, diagnose, shrink.

Runs in ~1 second:

1. catches a textbook crossed-handshake deadlock with the watchdog and
   prints the path-level hang diagnosis;
2. injects message drops into the stall-verification testbench and
   shows the campaign runner classifying the run as *detected*;
3. shrinks a three-directive failing fault schedule down to the single
   directive that actually causes the failure.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults import (FaultPlan, HangError, Watchdog,  # noqa: E402
                          build_deadlock_fixture, execute, shrink)


def main() -> int:
    # -- 1. deadlock diagnosis -----------------------------------------
    sim, clk = build_deadlock_fixture()
    Watchdog(sim, clk, window=400)
    try:
        sim.run(until=1_000_000)
    except HangError as exc:
        print("watchdog caught the hang:")
        print(exc.diagnosis.format())
    else:
        raise SystemExit("expected a HangError")

    # -- 2. campaign classification ------------------------------------
    plan = FaultPlan(seed=0).drop("down", probability=0.9)
    record = execute("stall_verification", plan, seed=0)
    print(f"\ninjected drops -> outcome: {record['outcome']} "
          f"(injected: {record['injected']})")
    assert record["outcome"] == "detected"

    # -- 3. shrinking a failing schedule -------------------------------
    fat = (FaultPlan(seed=5)
           .stall_burst("down", start=10, length=40, probability=0.8)
           .drop("down", probability=1.0)
           .stall_burst("up", start=0, length=20, probability=0.5))
    small = shrink("stall_verification", fat, seed=5,
                   target_outcome="detected")
    print(f"\nshrunk {len(fat.directives)} directives -> "
          f"{[d.kind for d in small.directives]}")
    assert len(small.directives) == 1
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
