#!/usr/bin/env python3
"""NoC routers: wormhole-with-VCs vs store-and-forward.

Builds 4x4 meshes with both router types from MatchLib (Table 2),
drives random traffic, and compares delivered latency — the wormhole
router pipelines flits across hops while the SF router waits for whole
packets, which is why the prototype SoC uses WHVCRouter.

Run:  python examples/noc_traffic.py [--backend compiled]

``--backend compiled`` runs the same meshes under the graph-compiled
dispatch loop (docs/COMPILED_BACKEND.md): identical flit-hop counts
and arrival times, idle routers parked instead of polled.
"""

import argparse
import random

from repro.kernel import Simulator, last_run, use_backend
from repro.noc import Mesh


def run_traffic(router: str, n_messages: int = 60, flits_per_msg: int = 6,
                seed: int = 11):
    sim = Simulator()
    clk = sim.add_clock("clk", period=909)
    mesh = Mesh(sim, clk, width=4, height=4, router=router)
    rng = random.Random(seed)
    sent = []
    for i in range(n_messages):
        src = rng.randrange(16)
        dest = rng.randrange(16)
        payloads = [f"m{i}f{j}" for j in range(flits_per_msg)]
        mesh.ni(src).send(dest, payloads)
        sent.append(tuple(payloads))

    sim.run(until=30_000_000)
    delivered = sum(ni.messages_received for ni in mesh.nis)
    last_arrival = max(ni.last_arrival_time or 0 for ni in mesh.nis)
    got = {tuple(p) for ni in mesh.nis for _, p in ni.received}
    assert got == set(sent), "payload corruption!"
    return delivered, last_arrival, mesh


def channel_over_noc_demo() -> None:
    """Section 2.3's polymorphism claim: the same producer/consumer code
    over a direct channel and over the mesh."""
    from repro.connections import Buffer, In, Out
    from repro.noc import NocChannel, NocChannelDemux

    def run(channel_of):
        sim = Simulator()
        clk = sim.add_clock("clk", period=909)
        chan = channel_of(sim, clk)
        out, inp = Out(chan), In(chan)
        received = []
        done = {}

        def producer():
            for i in range(20):
                yield from out.push(i)

        def consumer():
            for _ in range(20):
                received.append((yield from inp.pop()))
            done["time"] = sim.now

        sim.add_thread(producer(), clk, name="p")
        sim.add_thread(consumer(), clk, name="c")
        sim.run(until=2_000_000)
        return received, done["time"]

    def direct(sim, clk):
        return Buffer(sim, clk, capacity=4)

    def over_mesh(sim, clk):
        mesh = Mesh(sim, clk, width=3, height=3)
        return NocChannel(sim, mesh, chan_id=1,
                          src_demux=NocChannelDemux(mesh.ni(0)),
                          dst_demux=NocChannelDemux(mesh.ni(8)))

    got_direct, t_direct = run(direct)
    got_noc, t_noc = run(over_mesh)
    assert got_direct == got_noc == list(range(20))
    print(f"\nsame producer/consumer code: direct channel {t_direct / 1000:.1f} ns,"
          f" across the 3x3 mesh {t_noc / 1000:.1f} ns — identical data.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("threaded", "compiled"),
                        default="threaded",
                        help="simulation backend (results are identical)")
    args = parser.parse_known_args()[0]
    with use_backend(args.backend):
        _run_demos()
    if args.backend != "threaded":
        backend, reason = last_run()
        print(f"\nsimulation backend: {backend}"
              + (f" (fallback: {reason})" if reason else ""))


def _run_demos() -> None:
    for router in ("whvc", "sf"):
        delivered, finish, mesh = run_traffic(router)
        flits = getattr(mesh, "total_flits_forwarded", 0)
        print(f"{router:5s} router: {delivered} messages delivered, "
              f"all traffic drained at {finish / 1000:.1f} ns"
              + (f", {flits} router flit-hops" if flits else ""))
    print("\nwormhole switching pipelines flits across hops; "
          "store-and-forward pays packet length at every hop.")
    channel_over_noc_demo()


if __name__ == "__main__":
    main()
