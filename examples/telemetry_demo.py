#!/usr/bin/env python3
"""Observability layer tour: telemetry, stats reports, JSONL, VCD.

Builds a small producer/consumer pipeline crossing a GALS boundary on a
2x2 NoC mesh, runs it inside an ``observe.capture()`` session with
signal tracing on, then:

* prints the merged telemetry report (kernel counters, channel
  stall/occupancy statistics, NoC link utilization, clock activity);
* writes the report as JSONL (``telemetry_demo.jsonl``);
* writes the traced waveforms as a GTKWave-loadable VCD
  (``telemetry_demo.vcd``).

Run:  python examples/telemetry_demo.py

No ``--backend`` flag here: an attached telemetry hub (or VCD trace)
needs the instrumented per-delta loop, so a ``backend="compiled"``
request would fall back to the threaded kernel anyway and record
"telemetry hub attached" as the reason — see docs/COMPILED_BACKEND.md.

Equivalent CLI (for any built-in experiment):

    python -m repro stats fig3 --ports 2 --txns 10 --json fig3.jsonl
    python -m repro fig3 --ports 2 --txns 10 --trace-vcd fig3.vcd

See docs/OBSERVABILITY.md for what every counter means.
"""

from repro import observe
from repro.connections import (
    Buffer,
    BufferSignal,
    In,
    Out,
    stream_consumer,
    stream_producer,
)
from repro.gals import LocalClockGenerator, SupplyNoise
from repro.kernel import Simulator, write_vcd
from repro.noc import Mesh


def build_and_run(n=60):
    sim = Simulator()  # telemetry attaches via the ambient capture session
    gen = LocalClockGenerator(sim, "core", nominal_period=909,
                              noise=SupplyNoise(amplitude=0.05, seed=7))
    clk = gen.clock
    mesh = Mesh(sim, clk, width=2, height=2)

    work = Buffer(sim, clk, capacity=4, name="work")
    src, dst = Out(work), In(work)

    def producer():
        for i in range(n):
            yield from src.push(i)

    def consumer():
        for i in range(n):
            assert (yield from dst.pop()) == i
            if i % 8 == 0:
                yield 3  # periodic stall -> visible backpressure

    def noc_traffic():
        for i in range(6):
            mesh.ni(0).send(3, [f"msg{i}"])
            yield 40

    # A signal-level channel too: its valid/ready/data wires are real
    # Signal objects, so the auto-watching trace gives the VCD content.
    rtl = BufferSignal(sim, clk, name="rtl", capacity=2)
    rtl_sink = []
    sim.add_thread(stream_producer(rtl.enq, list(range(8))), clk, name="rtl_p")
    sim.add_thread(stream_consumer(rtl.deq, rtl_sink, count=8), clk,
                   name="rtl_c")

    sim.add_thread(producer(), clk, name="producer")
    sim.add_thread(consumer(), clk, name="consumer")
    sim.add_thread(noc_traffic(), clk, name="noc_traffic")
    sim.run(until=1_000_000)
    assert len(mesh.ni(3).received) == 6
    return sim, mesh, gen


def main() -> None:
    with observe.capture(trace_signals=True) as session:
        sim, mesh, gen = build_and_run()

    # The capture session already saw the simulator; hand it the mesh
    # and clock generator context for the router/link/clock sections.
    report = observe.collect(sim, label="telemetry-demo",
                             meshes=[mesh], clock_generators=[gen])
    print(observe.format_report(report))

    with open("telemetry_demo.jsonl", "w") as fh:
        n = observe.write_jsonl(observe.to_records(report), fh)
    print(f"\nwrote telemetry_demo.jsonl ({n} records)")

    trace = session.best_trace()
    if trace is not None:
        with open("telemetry_demo.vcd", "w") as fh:
            write_vcd(trace, fh)
        print(f"wrote telemetry_demo.vcd ({len(trace.signals)} signals, "
              f"{len(trace.changes)} changes) — open with gtkwave")


if __name__ == "__main__":
    main()
