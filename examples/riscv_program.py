#!/usr/bin/env python3
"""The RV32I controller core, standalone.

Assembles a small program (iterative Fibonacci with a function call and
a data-memory result table) and runs it on the interpreter that serves
as the prototype SoC's global controller.

Run:  python examples/riscv_program.py
"""

from repro.matchlib import MemArray
from repro.soc import RiscvCore, assemble

PROGRAM = """
    # Compute fib(0..9) into data memory at byte address 0.
    li  s0, 0          # table pointer
    li  s1, 0          # n
    li  s2, 10         # limit
loop:
    mv  a0, s1
    jal ra, fib
    sw  a0, 0(s0)
    addi s0, s0, 4
    addi s1, s1, 1
    blt  s1, s2, loop
    ebreak

fib:                   # iterative fib(a0) -> a0
    li  t0, 0          # fib(i)
    li  t1, 1          # fib(i+1)
    beqz a0, fib_done
fib_loop:
    add t2, t0, t1
    mv  t0, t1
    mv  t1, t2
    addi a0, a0, -1
    bnez a0, fib_loop
fib_done:
    mv  a0, t0
    ret
"""


def main() -> None:
    dmem = MemArray(64, width=32)
    core = RiscvCore(imem=assemble(PROGRAM), dmem=dmem)
    while not core.halted:
        core.step()
    fibs = dmem.dump(0, 10)
    print(f"retired {core.instructions_retired} instructions")
    print("fib(0..9) =", fibs)
    assert fibs == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]
    print("OK")


if __name__ == "__main__":
    main()
