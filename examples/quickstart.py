#!/usr/bin/env python3
"""Quickstart: Connections LI channels and a MatchLib component.

Builds the smallest interesting system — two producers feeding an
arbitrated crossbar through latency-insensitive channels, with random
stall injection on one output — and shows the central LI guarantee:
timing perturbations never change the data.

Run:  python examples/quickstart.py [--backend compiled]

``--backend compiled`` requests the graph-compiled dispatch loop
(docs/COMPILED_BACKEND.md); results are byte-identical either way, and
if the design falls outside the compiled capability proof the run
silently (but recordedly) proceeds threaded.
"""

import argparse

from repro.connections import Buffer, In, Out
from repro.kernel import Simulator, last_run, use_backend
from repro.matchlib import ArbitratedCrossbarModule


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("threaded", "compiled"),
                        default="threaded",
                        help="simulation backend (results are identical)")
    args = parser.parse_known_args()[0]
    with use_backend(args.backend):
        _run_demo()
    if args.backend != "threaded":
        backend, reason = last_run()
        print(f"simulation backend: {backend}"
              + (f" (fallback: {reason})" if reason else ""))


def _run_demo() -> None:
    sim = Simulator()
    clk = sim.add_clock("clk", period=909)  # 1.1 GHz at 1 tick = 1 ps

    # A 2x2 arbitrated crossbar with LI channels on every port.
    xbar = ArbitratedCrossbarModule(sim, clk, 2, 2)
    in_chans = [Buffer(sim, clk, capacity=4, name=f"in{i}") for i in range(2)]
    out_chans = [Buffer(sim, clk, capacity=4, name=f"out{o}") for o in range(2)]
    for i in range(2):
        xbar.ins[i].bind(in_chans[i])
        xbar.outs[i].bind(out_chans[i])

    # Verification hook (paper section 2.3): randomly withhold valid on
    # output 0 — no design or testbench change required.
    out_chans[0].set_stall(0.3, seed=7)

    # Producers: port 0 sends to alternating outputs, port 1 to output 0.
    def producer(port, pattern):
        src = Out(in_chans[port])
        for i, dst in enumerate(pattern):
            yield from src.push((dst, f"p{port}m{i}"))

    received = [[] for _ in range(2)]

    def consumer(port):
        dst = In(out_chans[port])
        while True:
            ok, msg = dst.pop_nb()
            if ok:
                received[port].append(msg)
            yield

    sim.add_thread(producer(0, [0, 1] * 10), clk, name="p0")
    sim.add_thread(producer(1, [0] * 10), clk, name="p1")
    sim.add_thread(consumer(0), clk, name="c0")
    sim.add_thread(consumer(1), clk, name="c1")
    sim.run(until=2_000_000)

    print(f"crossbar transactions: {xbar.transactions}")
    print(f"output 0 received {len(received[0])} messages "
          f"(stalled {out_chans[0].stats.stall_cycles} cycles)")
    print(f"output 1 received {len(received[1])} messages")
    # LI correctness: everything arrives, in per-source order, despite stalls.
    assert len(received[0]) == 20 and len(received[1]) == 10
    p1_msgs = [m for _, m in received[0] if m.startswith("p1")]
    assert p1_msgs == [f"p1m{i}" for i in range(10)]
    print("OK: all messages delivered in order under stall injection")


if __name__ == "__main__":
    main()
