#!/usr/bin/env python3
"""The C++-to-gates front-end flow (Figure 1) on the HLS engine.

Reproduces the section 2.4 case study: the same 32-lane 32-bit crossbar
coded two ways (src-loop vs dst-loop) synthesizes to very different
hardware — the src-loop coding needs per-output priority decoding and,
at the paper's 1.1 GHz clock, pipelining of its deep mux chain.  Also
prints the HLS-vs-hand-RTL QoR table behind the paper's ±10 % claim.

Run:  python examples/hls_flow.py
"""

from repro.experiments import (
    crossbar_clock_sweep,
    crossbar_qor_sweep,
    format_qor_results,
    format_qor_table,
    hls_vs_hand_qor,
)
from repro.flow import crossbar_testbench, run_frontend_flow
from repro.hls import crossbar_dst_loop_design, estimate_area, schedule


def main() -> None:
    # One design through the whole Figure 1 pipeline: functional sim,
    # RTL cosim, HLS, synthesis analysis (performance / power / area),
    # and Verilog emission.
    design = crossbar_dst_loop_design(4, 32)
    flow = run_frontend_flow(design, testbench=crossbar_testbench(4, 40))
    print(flow.to_text())
    print()

    # The paper's 32x32 configuration through HLS alone.
    design = crossbar_dst_loop_design(32, 32)
    sched = schedule(design, clock_period_ps=909)
    report = estimate_area(sched)
    print("dst-loop 32x32 crossbar through HLS:")
    print(" ", report.to_text())
    print(f"  scheduled {len(design)} ops in {sched.compile_seconds * 1e3:.1f} ms\n")

    print(format_qor_table(crossbar_qor_sweep(lanes=(8, 16, 32, 64))))
    print()
    print("clock sweep at 32x32 (penalty = comparators + forced pipelining):")
    print(format_qor_table(crossbar_clock_sweep()))
    print()
    print(format_qor_results(hls_vs_hand_qor(),
                             title="HLS vs hand-optimized RTL (paper: ±10 %)"))


if __name__ == "__main__":
    main()
