#!/usr/bin/env python3
"""Verification with stall injection (paper section 4).

Plants the classic latency-insensitivity bug — a forwarder that drops
its in-flight message after repeated backpressure (a missing skid
buffer) — and shows that directed testing with an always-ready consumer
can never see it, while randomized stall campaigns expose it within a
few trials, with no change to the design or the testbench.

Run:  python examples/verification_demo.py
"""

from repro.experiments import format_campaign, stall_campaign


def main() -> None:
    probabilities = (0.0, 0.05, 0.1, 0.3, 0.5)
    results = [stall_campaign(p, trials=10) for p in probabilities]
    print(format_campaign(results))
    print()
    clean = stall_campaign(0.5, trials=10, bug=False)
    print(f"clean design at stall p=0.5: {clean.detections}/10 flagged "
          "(LI-correct designs are immune to timing perturbation)")
    assert results[0].detections == 0
    assert results[-1].detections == 10
    assert clean.detections == 0


if __name__ == "__main__":
    main()
