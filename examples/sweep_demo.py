#!/usr/bin/env python3
"""Parallel sweep engine tour: spaces, pools, and the result cache.

Enumerates the stall-verification bug hunt as independent seeded
``SweepPoint``s, then runs the same space three ways:

* **cold** through the process-pool engine with a fresh
  content-addressed cache (every point executes and is stored);
* **warm** — the identical space again, now served entirely from the
  cache without executing a single simulation;
* **grown** — a larger space, where only the new points execute and
  the old ones come back as hits (incremental sweeps).

Every run's merged, ordered report is byte-identical under the
canonical serialization — the cache and the pool are invisible to the
science.  The demo keeps its cache in a temp dir so it leaves nothing
behind.

Run:  python examples/sweep_demo.py [--backend compiled]

``--backend compiled`` stamps every point with the graph-compiled
backend (docs/COMPILED_BACKEND.md).  A non-default backend enters each
point's cache key, so threaded and compiled results are cached
separately — the cache observes their byte-identity, never assumes it.

Equivalent CLI:

    python -m repro sweep stall_verification --jobs 4
    python -m repro sweep stall_verification --jobs 4   # all cache hits
    python -m repro sweep stall_verification --backend compiled

See the sweep section of docs/PERFORMANCE.md for the cache-key and
eviction semantics.
"""

import argparse
import tempfile
from dataclasses import replace

from repro.experiments.stall_verification import sweep_space
from repro.experiments.sweeps import get_sweep
from repro.sweep import ResultCache, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("threaded", "compiled"),
                        default="threaded",
                        help="simulation backend for every point")
    args = parser.parse_known_args()[0]

    spec = get_sweep("stall_verification")
    # A deliberately tiny space so the demo stays ~1 s: 2 stall
    # probabilities x 3 seeded trials = 6 independent points.
    points = sweep_space(probabilities=(0.0, 0.5), trials=3)
    if args.backend != "threaded":
        points = [replace(p, backend=args.backend) for p in points]
    print(f"space: {len(points)} points, e.g. {points[0].label}")

    with tempfile.TemporaryDirectory() as tmp:
        def cache() -> ResultCache:
            return ResultCache(tmp)  # same dir -> same cache keys

        cold = run_sweep(points, jobs=2, cache=cache())
        print("\n--- cold run ---")
        print(cold.summary())
        print(spec.summarize(cold.ok_results))

        warm = run_sweep(points, jobs=2, cache=cache())
        print("\n--- warm rerun ---")
        print(warm.summary())
        assert warm.executed == 0 and warm.cache_hits == len(points)
        assert warm.canonical() == cold.canonical(), \
            "cache must reproduce the cold run byte-for-byte"

        grown_points = sweep_space(probabilities=(0.0, 0.5), trials=5)
        if args.backend != "threaded":
            grown_points = [replace(p, backend=args.backend)
                            for p in grown_points]
        grown = run_sweep(grown_points, jobs=2, cache=cache())
        print("\n--- grown space (5 trials) ---")
        print(grown.summary())
        assert grown.cache_hits == len(points)  # old trials reused
        assert grown.executed == len(grown.points) - len(points)

    print("\ncache reproduced the cold run exactly; only new points ran.")


if __name__ == "__main__":
    main()
