"""Legacy setup shim: keeps ``pip install -e .`` working offline
(the environment has setuptools but no ``wheel`` package, so the PEP 660
editable-wheel path is unavailable)."""

from setuptools import setup

setup()
