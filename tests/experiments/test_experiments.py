"""Tests for the experiment harnesses (small configurations).

These validate that every table/figure harness runs and that the
paper's qualitative claims hold at reduced scale; the full-scale numbers
are produced by the benchmarks.
"""

import pytest

from repro.experiments import (
    bad_constraint_ablation,
    crossbar_clock_sweep,
    crossbar_qor_sweep,
    figure3,
    format_campaign,
    format_figure3,
    format_overhead_table,
    format_qor_results,
    format_qor_table,
    hls_vs_hand_qor,
    partition_size_sweep,
    run_crossbar_accuracy,
    run_fig6_test,
    stall_campaign,
)
from repro.experiments import testchip_overhead as overhead_report
from repro.experiments import testchip_partitions as partition_inventory
from repro.workloads import vector_scale_workload


# ----------------------------------------------------------------------
# Figure 3 (small): the headline accuracy result
# ----------------------------------------------------------------------
def test_fig3_sim_accurate_matches_rtl_at_4_ports():
    rtl = run_crossbar_accuracy("rtl", 4, txns_per_port=60)
    fast = run_crossbar_accuracy("sim-accurate", 4, txns_per_port=60)
    assert abs(fast.cycles_per_transaction - rtl.cycles_per_transaction) \
        / rtl.cycles_per_transaction < 0.10


def test_fig3_signal_accurate_error_grows():
    sa2 = run_crossbar_accuracy("signal-accurate", 2, txns_per_port=40)
    sa8 = run_crossbar_accuracy("signal-accurate", 8, txns_per_port=40)
    rtl8 = run_crossbar_accuracy("rtl", 8, txns_per_port=40)
    assert sa8.cycles_per_transaction > 2.5 * sa2.cycles_per_transaction
    assert sa8.cycles_per_transaction > 3 * rtl8.cycles_per_transaction


def test_fig3_model_validation():
    with pytest.raises(ValueError):
        run_crossbar_accuracy("spice", 4)


def test_fig3_format():
    points = figure3(ports=(2,), txns_per_port=20)
    text = format_figure3(points)
    assert "cycles per transaction" in text
    assert "rtl" in text


# ----------------------------------------------------------------------
# Figure 6 (one small point)
# ----------------------------------------------------------------------
def test_fig6_single_point_speedup_and_accuracy():
    point = run_fig6_test(vector_scale_workload(n_pes=4, n_per_pe=16))
    assert point.speedup > 3        # full-size runs reach 20-30x
    # At this tiny size the RTL links' fixed pipeline latencies weigh
    # relatively more; the full-size bench lands below the paper's 3 %.
    assert point.cycle_error < 0.10


# ----------------------------------------------------------------------
# crossbar QoR (section 2.4)
# ----------------------------------------------------------------------
def test_crossbar_qor_paper_configuration():
    points = crossbar_qor_sweep(lanes=(32,))
    p = points[0]
    assert 0.15 <= p.area_penalty <= 0.45   # paper: 25 %
    assert p.compile_ratio > 1.0
    assert "penalty" in format_qor_table(points)


def test_crossbar_penalty_grows_with_lanes():
    points = crossbar_qor_sweep(lanes=(8, 64))
    assert points[1].area_penalty > points[0].area_penalty


def test_crossbar_clock_sweep_brackets_the_penalty():
    points = crossbar_clock_sweep(periods_ps=(909, 2500))
    tight, relaxed = points
    assert relaxed.area_penalty < tight.area_penalty
    assert relaxed.src_latency == 1  # fits one cycle when relaxed


# ----------------------------------------------------------------------
# HLS vs hand QoR (section 2.2)
# ----------------------------------------------------------------------
def test_hls_qor_within_10_percent():
    results = hls_vs_hand_qor()
    assert all(abs(r.delta) <= 0.10 for r in results)
    assert "worst" in format_qor_results(results, title="t")


def test_bad_constraints_exceed_10_percent_somewhere():
    results = bad_constraint_ablation()
    assert any(abs(r.delta) > 0.10 for r in results)


# ----------------------------------------------------------------------
# GALS overhead (section 3.1)
# ----------------------------------------------------------------------
def test_gals_sweep_shows_crossover():
    points = partition_size_sweep()
    fractions = [p.fraction for p in points]
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[0] > 0.03 > fractions[-1]


def test_testchip_overhead_below_3_percent():
    report = overhead_report()
    assert report.chip_overhead_fraction < 0.03
    assert report.sync_frequency_penalty > 0.03
    text = format_overhead_table(partition_size_sweep(), report)
    assert "testchip" in text


def test_testchip_partition_inventory_matches_paper():
    parts = partition_inventory()
    names = [p.name for p in parts]
    assert sum(1 for n in names if n.startswith("pe")) == 15
    assert "gmem_left" in names and "gmem_right" in names
    assert "riscv" in names and "io" in names


# ----------------------------------------------------------------------
# stall-injection verification (section 4)
# ----------------------------------------------------------------------
def test_bug_invisible_without_stalls():
    result = stall_campaign(0.0, trials=5)
    assert result.detections == 0


def test_bug_found_with_stalls():
    result = stall_campaign(0.4, trials=5)
    assert result.detections >= 4
    assert result.first_detection_trial >= 1


def test_clean_design_never_flagged():
    result = stall_campaign(0.4, trials=5, bug=False)
    assert result.detections == 0


def test_campaign_format():
    results = [stall_campaign(0.0, trials=2), stall_campaign(0.5, trials=2)]
    text = format_campaign(results)
    assert "stall" in text.lower()


# ----------------------------------------------------------------------
# adaptive clocking (section 3.1, Kamakshi'16 reference)
# ----------------------------------------------------------------------
def test_adaptive_clocking_gains_over_static_margin():
    from repro.experiments import adaptive_clocking_experiment

    result = adaptive_clocking_experiment(duration=2_000_000)
    assert result.adaptive_cycles > result.synchronous_cycles
    assert 0.0 < result.mean_adaptive_stretch < result.static_margin


def test_adaptive_clocking_no_noise_no_gain_needed():
    from repro.experiments import adaptive_clocking_experiment

    result = adaptive_clocking_experiment(amplitude=0.0, guardband=0.0,
                                          duration=1_000_000)
    # Without resonance noise only the tiny random-walk component remains:
    # both clocks complete nearly the same cycle count.
    assert result.static_margin < 0.02
    diff = abs(result.adaptive_cycles - result.synchronous_cycles)
    assert diff / result.synchronous_cycles < 0.01
