"""Tests for GALS clock generators, pausible FIFOs, and overhead models."""

import pytest

from repro.connections import Buffer, In, Out
from repro.gals import (
    BruteForceSyncFIFO,
    GalsOverheadModel,
    LocalClockGenerator,
    Partition,
    PausibleBisyncFIFO,
    SupplyNoise,
    SynchronousBaseline,
)
from repro.kernel import Simulator


# ----------------------------------------------------------------------
# local clock generators
# ----------------------------------------------------------------------
def test_clean_generator_is_fixed_period():
    sim = Simulator()
    gen = LocalClockGenerator(sim, "g", nominal_period=100)
    sim.run(until=10_000)
    assert gen.period_min == gen.period_max == 100
    assert gen.clock.cycles == 101


def test_noisy_generator_stretches_under_droop():
    sim = Simulator()
    noise = SupplyNoise(amplitude=0.08, seed=3)
    gen = LocalClockGenerator(sim, "g", nominal_period=100, noise=noise)
    sim.run(until=500_000)
    assert gen.period_max > 100          # slowed during droop
    assert gen.mean_period > 100
    assert gen.effective_margin > 0.0
    # Bounded by the noise amplitude plus the random walk component.
    assert gen.period_max <= 100 * 1.15


def test_jitter_is_zero_mean_ish():
    sim = Simulator()
    gen = LocalClockGenerator(sim, "g", nominal_period=1000, jitter_ppm=50_000,
                              seed=9)
    sim.run(until=2_000_000)
    assert 990 < gen.mean_period < 1010
    assert gen.period_min < 1000 < gen.period_max


def test_dvfs_retarget():
    sim = Simulator()
    gen = LocalClockGenerator(sim, "g", nominal_period=100)
    sim.run(until=1000)
    cycles_before = gen.clock.cycles
    gen.set_nominal_period(200)
    sim.run(until=3000)
    # 2000 more ticks at period 200 -> ~10 more cycles, not 20.
    assert gen.clock.cycles - cycles_before <= 11


def test_generator_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        LocalClockGenerator(sim, "g", nominal_period=0)
    with pytest.raises(ValueError):
        SupplyNoise(amplitude=0.7)
    gen = LocalClockGenerator(sim, "g", nominal_period=10)
    with pytest.raises(ValueError):
        gen.set_nominal_period(0)


# ----------------------------------------------------------------------
# pausible bisynchronous FIFO
# ----------------------------------------------------------------------
def crossing_env(fifo_cls, *, tx_period=90, rx_period=130, n=40, **kw):
    """Producer in tx domain -> CDC FIFO -> consumer in rx domain."""
    sim = Simulator()
    tx = sim.add_clock("tx", period=tx_period)
    rx = sim.add_clock("rx", period=rx_period)
    fifo = fifo_cls(sim, tx, rx, **kw)
    in_ch = Buffer(sim, tx, capacity=2, name="in")
    out_ch = Buffer(sim, rx, capacity=2, name="out")
    fifo.in_port.bind(in_ch)
    fifo.out_port.bind(out_ch)
    src, dst = Out(in_ch), In(out_ch)
    received = []
    done = {}

    def producer():
        for i in range(n):
            yield from src.push(i)

    def consumer():
        for _ in range(n):
            received.append((yield from dst.pop()))
        done["time"] = sim.now

    sim.add_thread(producer(), tx, name="p")
    sim.add_thread(consumer(), rx, name="c")
    sim.run(until=n * 10_000)
    return fifo, received, done, sim


def test_pausible_fifo_delivers_in_order_across_domains():
    fifo, received, done, _ = crossing_env(PausibleBisyncFIFO, n=50)
    assert received == list(range(50))
    assert fifo.transfers == 50
    assert fifo.metastability_risks == 0
    assert "time" in done


@pytest.mark.parametrize("tx_period,rx_period", [
    (90, 130), (130, 90), (100, 100), (77, 233), (100, 101),
])
def test_pausible_fifo_any_frequency_ratio(tx_period, rx_period):
    fifo, received, _, _ = crossing_env(
        PausibleBisyncFIFO, tx_period=tx_period, rx_period=rx_period, n=30)
    assert received == list(range(30))
    assert fifo.metastability_risks == 0


def test_pausible_fifo_actually_pauses_receiver_clock():
    _, _, _, sim = crossing_env(PausibleBisyncFIFO, tx_period=100,
                                rx_period=101, n=60, settle_ps=40)
    rx = [c for c in sim._clocks if c.name == "rx"][0]
    assert rx.paused_edges > 0
    assert rx.total_pause_time > 0


def test_unprotected_crossing_sees_metastability_windows():
    """With pausing disabled, near-aligned clocks sample mid-settle."""
    fifo, received, _, _ = crossing_env(
        PausibleBisyncFIFO, tx_period=100, rx_period=101, n=60,
        settle_ps=40, pausible=False)
    assert received == list(range(60))  # model still delivers the data
    assert fifo.metastability_risks > 0  # ... but silicon might not have


def test_pausible_lower_latency_than_brute_force():
    _, _, done_p, _ = crossing_env(PausibleBisyncFIFO, n=40)
    _, _, done_b, _ = crossing_env(BruteForceSyncFIFO, n=40)
    assert done_p["time"] < done_b["time"]


def test_brute_force_fifo_correct():
    fifo, received, _, _ = crossing_env(BruteForceSyncFIFO, n=40)
    assert received == list(range(40))
    assert fifo.transfers == 40


def test_fifo_capacity_backpressure():
    fifo, received, _, _ = crossing_env(
        PausibleBisyncFIFO, tx_period=10, rx_period=400, n=20, capacity=2)
    assert received == list(range(20))  # slow consumer, bounded FIFO


def test_fifo_validation():
    sim = Simulator()
    tx = sim.add_clock("tx", period=10)
    rx = sim.add_clock("rx", period=10)
    with pytest.raises(ValueError):
        PausibleBisyncFIFO(sim, tx, rx, capacity=0)
    with pytest.raises(ValueError):
        PausibleBisyncFIFO(sim, tx, rx, settle_ps=-1)
    with pytest.raises(ValueError):
        BruteForceSyncFIFO(sim, tx, rx, sync_stages=0)


def test_gray_pointer_exposure():
    sim = Simulator()
    tx = sim.add_clock("tx", period=10)
    rx = sim.add_clock("rx", period=10)
    fifo = PausibleBisyncFIFO(sim, tx, rx, capacity=4)
    assert fifo.wptr_gray == 0 and fifo.rptr_gray == 0


# ----------------------------------------------------------------------
# overhead models
# ----------------------------------------------------------------------
def test_typical_partition_overhead_below_3_percent():
    """The paper's claim: < 3 % for typical partition sizes."""
    model = GalsOverheadModel()
    typical = Partition("pe", logic_gates=1_000_000, n_interfaces=5,
                        interface_width=64)
    assert model.overhead_fraction(typical) < 0.03


def test_small_partitions_pay_more():
    model = GalsOverheadModel()
    small = Partition("tiny", logic_gates=50_000, n_interfaces=5)
    big = Partition("big", logic_gates=5_000_000, n_interfaces=5)
    assert model.overhead_fraction(small) > model.overhead_fraction(big)
    assert model.overhead_fraction(small) > 0.03  # the crossover exists


def test_chip_level_overhead_aggregates():
    model = GalsOverheadModel()
    partitions = [Partition(f"pe{i}", 1_200_000, n_interfaces=5)
                  for i in range(15)]
    partitions += [Partition("gmem_l", 2_500_000, n_interfaces=6),
                   Partition("gmem_r", 2_500_000, n_interfaces=6),
                   Partition("riscv", 1_500_000, n_interfaces=3),
                   Partition("io", 800_000, n_interfaces=4)]
    frac = model.chip_overhead_fraction(partitions)
    assert 0.0 < frac < 0.03


def test_synchronous_baseline_pays_margin():
    base = SynchronousBaseline()
    partitions = [Partition(f"p{i}", 1_000_000) for i in range(20)]
    assert base.clock_tree_gates(partitions) > 0
    penalty = base.frequency_penalty(partitions, clock_period_ps=909)
    assert penalty > 0.05  # skew + OCV margin is a real cost
    # More partitions / bigger die -> more skew margin.
    bigger = partitions * 3
    assert base.skew_margin_ps(bigger) > base.skew_margin_ps(partitions)


def test_partition_validation():
    with pytest.raises(ValueError):
        Partition("bad", logic_gates=0)
    with pytest.raises(ValueError):
        Partition("bad", logic_gates=100, interface_width=0)
