"""Tests for GalsLink: the drop-in asynchronous mesh link."""

import pytest

from repro.connections import In, Out
from repro.gals import GalsLink
from repro.kernel import Simulator
from repro.noc import Mesh


def test_gals_link_channel_protocol_roundtrip():
    sim = Simulator()
    tx = sim.add_clock("tx", period=90)
    rx = sim.add_clock("rx", period=130)
    link = GalsLink(sim, tx, rx, name="l")
    out, inp = Out(link), In(link)
    received = []

    def producer():
        for i in range(30):
            yield from out.push(i)

    def consumer():
        for _ in range(30):
            received.append((yield from inp.pop()))

    sim.add_thread(producer(), tx, name="p")
    sim.add_thread(consumer(), rx, name="c")
    sim.run(until=500_000)
    assert received == list(range(30))
    assert link.transfers == 30
    assert link.occupancy == 0


def test_gals_link_peek_and_backpressure():
    sim = Simulator()
    tx = sim.add_clock("tx", period=10)
    rx = sim.add_clock("rx", period=10)
    link = GalsLink(sim, tx, rx, capacity=2, name="l")
    out = Out(link)

    def producer():
        for i in range(20):
            out.push_nb(i)
            yield

    sim.add_thread(producer(), tx, name="p")
    sim.run(until=50_000)
    # Bounded everywhere: tx buffer + fifo + rx buffer.
    assert link.occupancy <= 2 + 4 + 2
    ok, head = link.peek()
    assert ok and head == 0


def test_gals_mesh_delivers_under_frequency_spread():
    """A whole mesh built on GalsLink CDC links works end to end."""
    sim = Simulator()
    clocks = [sim.add_clock(f"c{i}", period=90 + 7 * (i % 5))
              for i in range(6)]

    def link_factory(src, dst, tag):
        return GalsLink(sim, clocks[src], clocks[dst], name=tag)

    mesh = Mesh(sim, clocks[0], width=3, height=2,
                clock_of=lambda n: clocks[n], link_factory=link_factory)
    mesh.ni(0).send(5, ["across", "domains"])
    mesh.ni(5).send(0, ["and", "back"])
    sim.run(until=2_000_000)
    assert mesh.ni(5).received == [(0, ["across", "domains"])]
    assert mesh.ni(0).received == [(5, ["and", "back"])]
