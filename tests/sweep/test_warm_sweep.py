"""Warm batched sweeps: byte identity, provenance, containment.

The correctness bar for ``run_sweep(..., warm=True)`` is differential:
for every experiment that registers a :class:`BatchAdapter`, a warm
sweep must be byte-identical under ``SweepResult.canonical()`` to the
serial and parallel fresh paths (and, through the shared cache keys, to
a cached rerun).  Failure containment is pinned with a synthetic
adapter: a point that wedges inside a batch loses only itself — the
SIGALRM fires inside ``adapter.run``, the finally-restore re-arms the
session, and the victim re-runs through the fresh path.
"""

import multiprocessing as mp
import os
import time
from dataclasses import replace

import pytest

from repro import registry
from repro.experiments.sweeps import SweepSpec, register_sweep
from repro.kernel import Simulator
from repro.sweep import BatchAdapter, ResultCache, SweepPoint, WarmSession
from repro.sweep import run_sweep
from repro.sweep.warm import group_key, reset_sessions, session_count

_FORK = mp.get_start_method(allow_none=False) == "fork"
needs_fork = pytest.mark.skipif(
    not _FORK, reason="parallel registry tests need fork-started workers")


@pytest.fixture(autouse=True)
def _fresh_sessions():
    """Each test starts (and leaves) an empty in-process session cache."""
    reset_sessions()
    yield
    reset_sessions()


def _batch_experiments():
    names = []
    for spec in registry.specs(hidden=True):
        if spec.sweep is not None and spec.sweep.batch is not None:
            names.append(spec.sweep.name)
    return sorted(names)


def _small_space(name):
    """A reduced default space: every group, a handful of points each."""
    points = registry.get_sweep(name).space()
    by_group = {}
    adapter = registry.get_sweep(name).batch
    kept = []
    for p in points:
        digest, _, _ = group_key(p, adapter)
        if by_group.setdefault(digest, 0) < 6:
            by_group[digest] += 1
            kept.append(p)
    return kept


# ----------------------------------------------------------------------
# the differential bar: warm == serial == parallel, every adapter
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", _batch_experiments())
def test_warm_identical_to_serial(name):
    points = _small_space(name)
    assert points, f"{name} enumerated an empty space"
    serial = run_sweep(points, jobs=1, telemetry=False)
    warm = run_sweep(points, jobs=1, warm=True)
    assert serial.errors == warm.errors == 0
    assert warm.canonical() == serial.canonical()
    assert warm.warm and not serial.warm
    assert warm.warm_points == len(points)
    assert warm.restores == len(points)
    assert not warm.fallback_reasons


@needs_fork
@pytest.mark.parametrize("name", _batch_experiments())
def test_warm_parallel_identical_to_serial(name):
    points = _small_space(name)
    serial = run_sweep(points, jobs=1, telemetry=False)
    warm = run_sweep(points, jobs=2, warm=True)
    assert serial.errors == warm.errors == 0
    assert warm.canonical() == serial.canonical()
    assert warm.warm_points == len(points)


@needs_fork
def test_warm_compiled_identical_to_threaded_serial():
    name = _batch_experiments()[0]
    points = [replace(p, backend="compiled") for p in _small_space(name)]
    serial = run_sweep(points, jobs=1, telemetry=False)
    warm = run_sweep(points, jobs=2, warm=True)
    assert serial.errors == warm.errors == 0
    assert warm.canonical() == serial.canonical()
    # And the compiled results agree with the plain threaded ones.
    threaded = run_sweep(_small_space(name), jobs=1, telemetry=False)
    assert [o.result for o in warm.outcomes] == \
        [o.result for o in threaded.outcomes]


def test_at_least_two_experiments_register_batch_adapters():
    assert len(_batch_experiments()) >= 2


# ----------------------------------------------------------------------
# provenance: warm/restored/fresh, session reuse, result payload
# ----------------------------------------------------------------------
def test_execution_provenance_counts():
    name = _batch_experiments()[0]
    points = _small_space(name)
    result = run_sweep(points, jobs=1, warm=True)
    execs = [o.execution for o in result.outcomes]
    # In-process (jobs=1) each group builds exactly once: one "warm"
    # point per group, every other point runs restored.
    assert execs.count("warm") == result.warm_groups
    assert execs.count("restored") == len(points) - result.warm_groups
    assert "fresh" not in execs
    assert session_count() == result.warm_groups

    # A second warm sweep in the same process reuses the live sessions:
    # construction is skipped entirely, everything runs restored.
    again = run_sweep(points, jobs=1, warm=True)
    assert [o.execution for o in again.outcomes] == ["restored"] * len(points)
    assert again.canonical() == result.canonical()


def test_warm_payload_and_summary_surface_provenance():
    name = _batch_experiments()[0]
    points = _small_space(name)[:4]
    result = run_sweep(points, jobs=1, warm=True)
    payload = result.to_payload()
    assert payload["warm"] is True
    assert payload["warm_points"] == len(points)
    assert payload["executions"] == [o.execution for o in result.outcomes]
    assert "warm" in result.summary()


def test_warm_interchanges_with_cache_and_fresh():
    name = _batch_experiments()[0]
    points = _small_space(name)[:5]
    cache_dir = os.path.join(os.getcwd(), ".pytest-warm-cache")
    try:
        cache = ResultCache(cache_dir, version="t", rev="r")
        warm = run_sweep(points, jobs=1, warm=True, cache=cache)
        assert warm.cache_hits == 0 and warm.warm_points == len(points)
        # Warm results satisfy a later *fresh* sweep from the cache...
        cached = run_sweep(points, jobs=1, telemetry=False, cache=cache)
        assert cached.cache_hits == len(points)
        assert cached.canonical() == warm.canonical()
        # ...and the persistent stats carry the warm counters.
        persisted = ResultCache(cache_dir, version="t",
                                rev="r").persistent_stats()
        assert persisted["warm_points"] == len(points)
        assert persisted["warm_restores"] == len(points)
    finally:
        import shutil

        shutil.rmtree(cache_dir, ignore_errors=True)


def test_warm_and_incremental_are_mutually_exclusive():
    name = _batch_experiments()[0]
    points = _small_space(name)[:2]
    with pytest.raises(ValueError):
        run_sweep(points, warm=True, incremental=True)


def test_warm_rejects_mixed_experiments():
    a, b = _batch_experiments()[:2]
    points = [registry.get_sweep(a).space()[0],
              registry.get_sweep(b).space()[0]]
    with pytest.raises(ValueError):
        run_sweep(points, warm=True)


# ----------------------------------------------------------------------
# fallback: no adapter registered -> fresh path, reason recorded
# ----------------------------------------------------------------------
def _plain_runner(params, seed):
    return {"i": params["i"], "seed": seed, "double": params["i"] * 2}


register_sweep(SweepSpec("warm_plain_test", "test", space=lambda **kw: [],
                         runner=_plain_runner))


def test_no_adapter_falls_back_to_fresh():
    points = [SweepPoint("warm_plain_test", {"i": i}, seed=i)
              for i in range(5)]
    serial = run_sweep(points, jobs=1, telemetry=False)
    warm = run_sweep(points, jobs=1, warm=True)
    assert warm.errors == 0
    assert warm.canonical() == serial.canonical()
    assert warm.warm_points == 0 and warm.warm_groups == 0
    assert warm.fallback_reasons == {"no batch adapter registered": 5}
    assert [o.execution for o in warm.outcomes] == ["fresh"] * 5


# ----------------------------------------------------------------------
# containment: a wedged point dies alone inside its batch
# ----------------------------------------------------------------------
def _sleepy_warm_runner(params, seed):
    if params.get("sentinel") and not os.path.exists(params["sentinel"]):
        with open(params["sentinel"], "w"):
            pass
        time.sleep(params["sleep"])
    return {"i": params["i"], "seed": seed}


def _sleepy_warm_build(base_params, base_seed):
    sim = Simulator()
    sim.add_clock("clk", period=10)
    return WarmSession(sim=sim, context=None)


def _sleepy_warm_run(session, params, seed):
    session.sim.run(until=100)
    return _sleepy_warm_runner(params, seed)


_SLEEPY_ADAPTER = BatchAdapter(
    safe_params=frozenset({"i", "sentinel", "sleep"}),
    base_params=lambda params: {},
    base_seed=lambda params, seed: 0,
    build=_sleepy_warm_build,
    run=_sleepy_warm_run,
)

register_sweep(SweepSpec("warm_sleepy_test", "test", space=lambda **kw: [],
                         runner=_sleepy_warm_runner,
                         batch=_SLEEPY_ADAPTER))


def test_timeout_kills_only_the_wedged_point(tmp_path):
    """Satellite: per-point SIGALRM inside a batch.

    Point 2 wedges on its first (warm) evaluation; the alarm kills it
    mid-``adapter.run``, the finally-restore re-arms the session, the
    rest of the batch completes warm, and the victim recovers through
    the fresh retry (the sentinel makes the wedge one-shot).
    """
    points = [SweepPoint("warm_sleepy_test",
                         {"i": i,
                          "sentinel": str(tmp_path / "wedge") if i == 2
                          else "",
                          "sleep": 30.0 if i == 2 else 0.0},
                         seed=i)
              for i in range(6)]
    t0 = time.perf_counter()
    result = run_sweep(points, jobs=1, warm=True, timeout=0.5)
    assert time.perf_counter() - t0 < 10.0
    assert result.errors == 0
    assert [r["i"] for r in result.results] == list(range(6))
    # Only the victim left the warm path; the batch kept going.
    execs = [o.execution for o in result.outcomes]
    assert execs[2] == "fresh" and execs.count("fresh") == 1
    assert result.warm_points == 5
    assert result.restores == 6  # the finally-restore ran for the victim too
    assert result.retried == 1
    assert result.outcomes[2].attempts == 2
    assert "warm execution failed" in result.outcomes[2].fallback_reason
    assert "PointTimeout" in result.outcomes[2].fallback_reason


def test_point_error_inside_batch_retries_fresh(tmp_path):
    """A crash inside adapter.run is contained the same way."""

    points = [SweepPoint("warm_sleepy_test", {"i": i, "sentinel": "",
                                              "sleep": 0.0}, seed=i)
              for i in range(3)]
    # Crash point: a sleep-free sentinel point cannot crash, so wedge a
    # nonexistent directory into the sentinel open() instead.
    points.insert(1, SweepPoint(
        "warm_sleepy_test",
        {"i": 99, "sentinel": str(tmp_path / "no" / "such" / "dir"),
         "sleep": 0.0},
        seed=99))
    result = run_sweep(points, jobs=1, warm=True, retries=0)
    # The crashing point fails warm AND fresh (the directory never
    # exists) -> one error; the rest of its batch is untouched.
    assert result.errors == 1
    assert result.executed == 3
    bad = result.outcomes[1]
    assert bad.status == "error"
    assert "warm execution failed" in bad.fallback_reason
    assert result.warm_points == 3
