"""Registered experiment sweep spaces: shape, determinism, runners."""

import pytest

from repro.experiments import stall_verification as sv
from repro.experiments.sweeps import SWEEP_SPECS, build_space, get_sweep
from repro.sweep import SweepPoint

_REAL_SPECS = ("stall_verification", "fig3_crossbar", "gals_overhead",
               "crossbar_qor", "pe_scaling")


@pytest.mark.parametrize("name", _REAL_SPECS)
def test_space_is_nonempty_and_deterministic(name):
    spec = get_sweep(name)
    points = spec.space()
    assert points, f"{name} produced an empty space"
    assert points == spec.space()  # same call, same points
    for p in points:
        assert isinstance(p, SweepPoint)
        assert p.experiment == name
        assert isinstance(p.params, dict)


@pytest.mark.parametrize("name", _REAL_SPECS)
def test_registry_exposes_runner_and_summarizer(name):
    spec = SWEEP_SPECS[name]
    assert callable(spec.runner)
    assert spec.summarize is None or callable(spec.summarize)
    assert spec.help


def test_build_space_threads_seed():
    base = build_space("stall_verification")
    shifted = build_space("stall_verification", seed=500)
    assert len(base) == len(shifted)
    assert base != shifted
    assert all(p.seed >= 500 for p in shifted)


def test_build_space_rejects_unknown_name():
    with pytest.raises(KeyError, match="stall_verification"):
        build_space("definitely_not_registered")


def test_stall_space_matches_serial_campaign_grid():
    points = sv.sweep_space(probabilities=(0.0, 0.3), trials=4, seed=10)
    assert len(points) == 2 * 4
    # Per-trial seeds reproduce stall_campaign's base_seed + trial rule.
    for p in points:
        assert p.seed == 10 + p.params["trial"]


def test_stall_point_matches_one_trial():
    spec = get_sweep("stall_verification")
    rec = spec.runner({"stall_probability": 0.5, "n_msgs": 60,
                       "bug": True, "trial": 0}, seed=100)
    assert rec["detected"] == sv._one_trial(0.5, 100, n_msgs=60, bug=True)


def test_cheap_analytic_points_run_and_summarize():
    # gals_overhead and crossbar_qor are pure analytic models — run one
    # point of each end-to-end and render its summary text.
    for name in ("gals_overhead", "crossbar_qor"):
        spec = get_sweep(name)
        point = spec.space()[0]
        rec = spec.runner(point.params, point.seed)
        assert isinstance(rec, dict) and rec
        if spec.summarize is not None:
            text = spec.summarize([rec])
            assert isinstance(text, str) and text.strip()


def test_stall_summarize_renders_campaign_table():
    points = sv.sweep_space(probabilities=(0.5,), trials=3)
    spec = get_sweep("stall_verification")
    records = [spec.runner(p.params, p.seed) for p in points]
    text = spec.summarize(records)
    assert "0.5" in text
    campaigns = sv.campaigns_from_sweep(records)
    assert len(campaigns) == 1
    assert campaigns[0].trials == 3
