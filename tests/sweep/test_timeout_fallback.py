"""Per-point timeout without SIGALRM: the kernel cycle-budget fallback.

SIGALRM only works on the main thread of a POSIX process.  When a sweep
runs anywhere else, ``_alarm`` falls back to :func:`time_budget`, which
the scheduler polls between timesteps — so a wedged point still stops.
"""

import threading

import pytest

from repro.experiments.sweeps import SweepSpec, register_sweep
from repro.kernel import Simulator
from repro.kernel.simulator import TimeBudgetExceeded, time_budget
from repro.sweep import SweepPoint, run_sweep


def _endless_runner(params, seed):
    """A simulation that never finishes: no until, no max_steps."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)

    def spin():
        while True:
            yield

    sim.add_thread(spin(), clk)
    sim.run(until=None)
    return {"unreachable": True}


register_sweep(SweepSpec("endless_test", "test", space=lambda **kw: [],
                         runner=_endless_runner))


def test_time_budget_interrupts_an_unbounded_run():
    with pytest.raises(TimeBudgetExceeded):
        with time_budget(0.05):
            _endless_runner({}, 0)


def test_time_budget_rejects_nonpositive():
    for bad in (0, -1, None):
        with pytest.raises(ValueError):
            with time_budget(bad):
                pass


def test_sweep_timeout_applies_off_main_thread():
    """On a worker thread SIGALRM raises ValueError; the engine must
    still bound the point via the kernel budget instead of hanging."""
    outcome = {}

    def body():
        result = run_sweep(
            [SweepPoint("endless_test", {}, seed=0)],
            jobs=1, timeout=0.2, retries=0, telemetry=False)
        outcome["result"] = result

    worker = threading.Thread(target=body)
    worker.start()
    worker.join(timeout=60)
    assert not worker.is_alive(), "sweep point was not bounded"
    result = outcome["result"]
    assert result.errors == 1
    error = result.outcomes[0].error
    assert "PointTimeout" in error
    assert "cycle-budget fallback" in error
