"""Multi-process ResultCache stress: shared directory, exact stats.

Warm and parallel sweeps routinely share one cache directory across
worker processes (and across concurrently launched sweeps).  Entry
writes were always atomic (temp file + ``os.replace``), but the two
read-modify-write sections — the ``_stats.json`` merge and the
over-limit eviction scan — now run under a POSIX ``flock`` on
``<root>/_lock``.  These tests hammer both from real concurrent
processes and assert *exact* outcomes: no lost counter increments, no
corrupt entries, no over-eviction below the configured limit.
"""

import json
import multiprocessing as mp
import pathlib

import pytest

from repro.sweep import ResultCache, SweepPoint
from repro.sweep import cache as cache_mod

_FORK = mp.get_start_method(allow_none=False) == "fork"
needs_fork = pytest.mark.skipif(
    not _FORK, reason="multi-process stress needs fork-started workers")
needs_flock = pytest.mark.skipif(
    cache_mod.fcntl is None, reason="exact stats merging needs fcntl.flock")

N_PROCS = 6
PUTS_PER_PROC = 12


def _point(worker: int, i: int) -> SweepPoint:
    return SweepPoint("cache_stress", {"worker": worker, "i": i},
                      seed=worker * 1000 + i)


def _stress_writer(root: str, worker: int, barrier) -> None:
    """One writer: put + flush on every iteration (maximal contention)."""
    cache = ResultCache(root, version="t", rev="r")
    barrier.wait()
    for i in range(PUTS_PER_PROC):
        cache.put(_point(worker, i), {"result": {"worker": worker, "i": i}},
                  cost=0.5)
        cache.flush_stats()


def _evict_writer(root: str, worker: int, barrier) -> None:
    cache = ResultCache(root, version="t", rev="r", max_entries=20)
    barrier.wait()
    for i in range(PUTS_PER_PROC):
        cache.put(_point(worker, i), {"result": i}, cost=float(i))
    cache.flush_stats()


def _run_workers(target, root):
    ctx = mp.get_context("fork")
    barrier = ctx.Barrier(N_PROCS)
    procs = [ctx.Process(target=target, args=(root, w, barrier))
             for w in range(N_PROCS)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    return procs


@needs_fork
@needs_flock
def test_concurrent_flushes_merge_exactly(tmp_path):
    root = str(tmp_path / "shared")
    _run_workers(_stress_writer, root)

    cache = ResultCache(root, version="t", rev="r")
    persisted = cache.persistent_stats()
    # flock makes the read-modify-write merge exact: every one of the
    # N_PROCS * PUTS_PER_PROC interleaved flushes landed.
    assert persisted["puts"] == N_PROCS * PUTS_PER_PROC
    assert len(cache) == N_PROCS * PUTS_PER_PROC

    # Every entry survived the concurrent traffic intact and every
    # written result is served back verbatim.
    for path in pathlib.Path(root).glob("*.json"):
        if path.name.startswith("_"):
            json.loads(path.read_text())  # sidecar: merely valid JSON
            continue
        entry = json.loads(path.read_text())
        assert entry["schema"] and "value" in entry
    for w in range(N_PROCS):
        for i in range(PUTS_PER_PROC):
            hit = cache.get(_point(w, i))
            assert hit == {"result": {"worker": w, "i": i}}

    # No temp files were stranded (atomic replace completed everywhere).
    assert not list(pathlib.Path(root).glob("*.tmp.*"))


@needs_fork
@needs_flock
def test_concurrent_eviction_never_races_the_scan(tmp_path):
    root = str(tmp_path / "shared")
    _run_workers(_evict_writer, root)

    cache = ResultCache(root, version="t", rev="r", max_entries=20)
    # The locked re-list prevents two writers deleting from one stale
    # listing: the survivors respect the limit without over-evicting
    # to nothing, and every survivor still parses.
    assert 0 < len(cache) <= 20
    for _, _, path in cache._entries():
        entry = json.loads(path.read_text())
        assert "value" in entry
    assert cache.persistent_stats()["puts"] == N_PROCS * PUTS_PER_PROC


def test_lock_file_is_not_a_cache_entry(tmp_path):
    cache = ResultCache(str(tmp_path), version="t", rev="r")
    cache.put(_point(0, 0), {"result": 1})
    cache.flush_stats()
    with cache._locked():
        pass
    assert len(cache) == 1  # _lock and _stats.json are not entries


def test_degrades_lock_free_without_fcntl(tmp_path, monkeypatch):
    """No fcntl (non-POSIX): best-effort merge, never a crash."""
    monkeypatch.setattr(cache_mod, "fcntl", None)
    cache = ResultCache(str(tmp_path), version="t", rev="r")
    cache.put(_point(1, 1), {"result": 2}, cost=1.0)
    merged = cache.flush_stats()
    assert merged["puts"] == 1
    assert cache.persistent_stats()["puts"] == 1


def test_unwritable_root_degrades_lock_free(tmp_path):
    cache = ResultCache(str(tmp_path / "c"), version="t", rev="r")
    cache.put(_point(2, 2), {"result": 3})
    import os
    import stat

    os.chmod(cache.root, stat.S_IRUSR | stat.S_IXUSR)
    try:
        if os.access(pathlib.Path(cache.root) / "x", os.W_OK):
            pytest.skip("running as root: chmod does not revoke writes")
        with cache._locked():
            pass  # open('a+') fails -> lock-free section, no raise
    finally:
        os.chmod(cache.root, stat.S_IRWXU)
