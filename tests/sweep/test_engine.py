"""The sweep engine: ordering, parallel identity, retry, timeout, cache.

Synthetic experiments are registered into the live sweep registry; the
runners are module-level so fork-started worker processes can resolve
them by name (parallel tests skip on platforms without fork).
"""

import multiprocessing as mp
import os
import time

import pytest

from repro.experiments.sweeps import SWEEP_SPECS, SweepSpec, register_sweep
from repro.sweep import PointTimeout, ResultCache, SweepPoint, run_sweep

_FORK = mp.get_start_method(allow_none=False) == "fork"
needs_fork = pytest.mark.skipif(
    not _FORK, reason="parallel registry tests need fork-started workers")


def _echo_runner(params, seed):
    return {"i": params["i"], "seed": seed, "square": params["i"] ** 2}


def _crash_once_runner(params, seed):
    """Crashes on first call (per sentinel file), succeeds on retry."""
    sentinel = params["sentinel"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        raise RuntimeError("injected crash")
    return {"i": params["i"], "recovered": True}


def _always_crash_runner(params, seed):
    raise RuntimeError("this point always explodes")


def _sleepy_runner(params, seed):
    time.sleep(params["sleep"])
    return {"slept": params["sleep"]}


_FAKES = [
    SweepSpec("echo_test", "test", space=lambda **kw: [],
              runner=_echo_runner),
    SweepSpec("crash_once_test", "test", space=lambda **kw: [],
              runner=_crash_once_runner),
    SweepSpec("always_crash_test", "test", space=lambda **kw: [],
              runner=_always_crash_runner),
    SweepSpec("sleepy_test", "test", space=lambda **kw: [],
              runner=_sleepy_runner),
]
for _spec in _FAKES:
    register_sweep(_spec)


def _echo_points(n):
    return [SweepPoint("echo_test", {"i": i}, seed=1000 + i)
            for i in range(n)]


# ----------------------------------------------------------------------
# ordering and serial/parallel identity
# ----------------------------------------------------------------------
def test_results_keep_point_order_serial():
    result = run_sweep(_echo_points(7), jobs=1, telemetry=False)
    assert [r["i"] for r in result.results] == list(range(7))
    assert result.executed == 7 and result.errors == 0
    assert [o.attempts for o in result.outcomes] == [1] * 7


@needs_fork
def test_parallel_results_identical_to_serial():
    points = _echo_points(11)
    serial = run_sweep(points, jobs=1, telemetry=False)
    parallel = run_sweep(points, jobs=3, telemetry=False, chunksize=2)
    assert serial.results == parallel.results
    assert serial.canonical() == parallel.canonical()


def test_empty_sweep_rejected():
    with pytest.raises(ValueError):
        run_sweep([])


# ----------------------------------------------------------------------
# retry-once-on-crash
# ----------------------------------------------------------------------
def test_crash_is_retried_and_recovers_serial(tmp_path):
    points = [SweepPoint("crash_once_test",
                         {"i": 0, "sentinel": str(tmp_path / "s0")})]
    result = run_sweep(points, jobs=1, telemetry=False)
    assert result.errors == 0 and result.retried == 1
    assert result.outcomes[0].status == "ok"
    assert result.outcomes[0].attempts == 2
    assert result.results[0]["recovered"] is True


@needs_fork
def test_crash_is_retried_and_recovers_parallel(tmp_path):
    points = _echo_points(4) + [
        SweepPoint("crash_once_test",
                   {"i": 9, "sentinel": str(tmp_path / "s9")})]
    result = run_sweep(points, jobs=2, telemetry=False)
    assert result.errors == 0 and result.retried == 1
    assert result.results[-1]["recovered"] is True
    assert [r["i"] for r in result.results[:4]] == [0, 1, 2, 3]


def test_persistent_crash_recorded_not_raised():
    points = _echo_points(2) + [SweepPoint("always_crash_test", {"i": 9})]
    result = run_sweep(points, jobs=1, telemetry=False, retries=1)
    assert result.errors == 1 and result.executed == 2
    bad = result.outcomes[-1]
    assert bad.status == "error" and bad.result is None
    assert "explodes" in bad.error
    assert bad.attempts == 2  # first run + one retry
    # The healthy points are unaffected.
    assert [r["i"] for r in result.results[:2]] == [0, 1]


def test_failed_points_never_cached(tmp_path):
    cache = ResultCache(str(tmp_path / "c"), version="t", rev="r")
    points = [SweepPoint("always_crash_test", {"i": 0})]
    run_sweep(points, jobs=1, telemetry=False, retries=0, cache=cache)
    assert len(cache) == 0


# ----------------------------------------------------------------------
# per-point timeout
# ----------------------------------------------------------------------
def test_timeout_kills_wedged_point_serial():
    points = [SweepPoint("sleepy_test", {"sleep": 5.0})]
    t0 = time.perf_counter()
    result = run_sweep(points, jobs=1, telemetry=False, timeout=0.2,
                       retries=0)
    assert time.perf_counter() - t0 < 2.0
    assert result.errors == 1
    assert "PointTimeout" in result.outcomes[0].error


@needs_fork
def test_timeout_does_not_sink_the_sweep_parallel():
    points = [SweepPoint("sleepy_test", {"sleep": 5.0})] + _echo_points(3)
    t0 = time.perf_counter()
    result = run_sweep(points, jobs=2, telemetry=False, timeout=0.3,
                       retries=0, chunksize=1)
    assert time.perf_counter() - t0 < 5.0
    assert result.errors == 1 and result.executed == 3
    assert result.outcomes[0].status == "error"
    assert [r["i"] for r in result.results[1:]] == [0, 1, 2]


def test_point_timeout_is_an_exception_type():
    assert issubclass(PointTimeout, Exception)


# ----------------------------------------------------------------------
# cache integration
# ----------------------------------------------------------------------
def test_second_run_served_from_cache(tmp_path):
    cache_dir = str(tmp_path / "c")
    points = _echo_points(5)
    cold = run_sweep(points, jobs=1, telemetry=False,
                     cache=ResultCache(cache_dir, version="t", rev="r"))
    warm = run_sweep(points, jobs=1, telemetry=False,
                     cache=ResultCache(cache_dir, version="t", rev="r"))
    assert cold.executed == 5 and cold.cache_hits == 0
    assert warm.executed == 0 and warm.cache_hits == 5
    assert [o.status for o in warm.outcomes] == ["cached"] * 5
    assert warm.results == cold.results
    assert warm.canonical() == cold.canonical()


def test_incremental_sweep_only_runs_new_points(tmp_path):
    cache_dir = str(tmp_path / "c")
    run_sweep(_echo_points(3), jobs=1, telemetry=False,
              cache=ResultCache(cache_dir, version="t", rev="r"))
    grown = run_sweep(_echo_points(5), jobs=1, telemetry=False,
                      cache=ResultCache(cache_dir, version="t", rev="r"))
    assert grown.cache_hits == 3 and grown.executed == 2
    assert [r["i"] for r in grown.results] == list(range(5))


# ----------------------------------------------------------------------
# telemetry merge
# ----------------------------------------------------------------------
def test_telemetry_merges_in_point_order():
    from repro.experiments.stall_verification import sweep_space

    points = sweep_space(probabilities=(0.3,), trials=2)
    result = run_sweep(points, jobs=1, telemetry=True)
    report = result.report()
    assert report.simulators == len(points)
    assert report.kernel["events_fired"] > 0
    assert report.channels  # per-channel rows travelled with each point
    # Each point contributed a labelled per-point report in order.
    assert result.outcomes[0].telemetry[0]["label"] == "stall_verification[0]"
    assert result.outcomes[1].telemetry[0]["label"] == "stall_verification[1]"


def test_no_telemetry_mode_skips_records():
    result = run_sweep(_echo_points(2), jobs=1, telemetry=False)
    assert all(o.telemetry is None for o in result.outcomes)
    assert result.report().simulators == 0


# ----------------------------------------------------------------------
# registry hygiene
# ----------------------------------------------------------------------
def test_unknown_experiment_becomes_error_outcome():
    result = run_sweep([SweepPoint("no_such_exp", {})], jobs=1,
                       telemetry=False, retries=0)
    assert result.errors == 1
    bad = result.outcomes[0]
    assert bad.status == "error"
    assert "no_such_exp" in bad.error
    # The registry lookup error names known experiments as candidates.
    assert "echo_test" in bad.error


def test_fake_specs_are_registered():
    for spec in _FAKES:
        assert SWEEP_SPECS[spec.name] is spec


# ----------------------------------------------------------------------
# telemetry / cache consistency
# ----------------------------------------------------------------------
def test_telemetry_sweep_skips_telemetry_less_entries(tmp_path):
    """A telemetry=False run must not poison later telemetry=True runs:
    entries without telemetry are honest misses and get re-executed."""
    from repro.experiments.stall_verification import sweep_space

    cache_dir = str(tmp_path / "c")
    points = sweep_space(probabilities=(0.3,), trials=1)
    run_sweep(points, jobs=1, telemetry=False,
              cache=ResultCache(cache_dir, version="t", rev="r"))
    rich = run_sweep(points, jobs=1, telemetry=True,
                     cache=ResultCache(cache_dir, version="t", rev="r"))
    assert rich.cache_hits == 0 and rich.executed == len(points)
    assert all(o.telemetry for o in rich.outcomes)
    # The re-execution upgrades the entry: the next rich run hits.
    again = run_sweep(points, jobs=1, telemetry=True,
                      cache=ResultCache(cache_dir, version="t", rev="r"))
    assert again.cache_hits == len(points)
    assert all(o.telemetry for o in again.outcomes)


def test_plain_sweep_strips_cached_telemetry(tmp_path):
    from repro.experiments.stall_verification import sweep_space

    cache_dir = str(tmp_path / "c")
    points = sweep_space(probabilities=(0.3,), trials=1)
    rich = run_sweep(points, jobs=1, telemetry=True,
                     cache=ResultCache(cache_dir, version="t", rev="r"))
    plain = run_sweep(points, jobs=1, telemetry=False,
                      cache=ResultCache(cache_dir, version="t", rev="r"))
    assert plain.cache_hits == len(points)
    assert all(o.telemetry is None for o in plain.outcomes)
    assert plain.results == rich.results
