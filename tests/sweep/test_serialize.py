"""The canonical serializer: one obj, one byte string, always."""

from dataclasses import dataclass

import pytest

from repro.sweep import (
    canonical_digest,
    canonical_json,
    dump_json,
    to_jsonable,
)


@dataclass(frozen=True)
class _Inner:
    x: int
    wall_seconds: float


@dataclass(frozen=True)
class _Outer:
    name: str
    inner: _Inner
    values: tuple


def test_key_order_is_irrelevant():
    assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})


def test_tuples_and_lists_serialize_identically():
    assert canonical_json((1, 2, 3)) == canonical_json([1, 2, 3])


def test_sets_are_sorted():
    assert canonical_json({3, 1, 2}) == canonical_json([1, 2, 3])


def test_dataclasses_flatten_recursively():
    obj = _Outer("n", _Inner(1, 0.5), (1, 2))
    assert to_jsonable(obj) == {
        "name": "n", "inner": {"x": 1, "wall_seconds": 0.5},
        "values": [1, 2]}


def test_exclude_drops_keys_at_every_depth():
    obj = _Outer("n", _Inner(1, 0.5), (1, 2))
    flat = to_jsonable(obj, exclude={"wall_seconds"})
    assert flat["inner"] == {"x": 1}
    nested = {"kernel": {"proc_seconds": {"t": 1.0}, "events": 3}}
    assert to_jsonable(nested, exclude={"proc_seconds"}) == {
        "kernel": {"events": 3}}


def test_digest_distinguishes_content():
    a = canonical_digest({"experiment": "e", "seed": 1})
    b = canonical_digest({"experiment": "e", "seed": 2})
    assert a != b
    assert a == canonical_digest({"seed": 1, "experiment": "e"})


def test_non_finite_floats_rejected():
    with pytest.raises(ValueError):
        canonical_json(float("nan"))


def test_unserializable_objects_rejected():
    with pytest.raises(TypeError):
        canonical_json(object())


def test_dump_json_roundtrip(tmp_path):
    import json

    path = str(tmp_path / "out.json")
    text = dump_json({"b": (1, 2), "a": None}, path)
    assert json.loads(text) == {"a": None, "b": [1, 2]}
    with open(path) as fh:
        assert json.load(fh) == {"a": None, "b": [1, 2]}
