"""The content-addressed result cache: keys, LRU eviction, recovery.

Eviction test shapes follow the related priority-expiry-cache repo:
drive the cache to its bound, touch an entry to refresh its recency,
and check exactly the least-recently-used entry disappeared.
"""

import json
import os
import pathlib

from repro.sweep import ResultCache, SweepPoint


def _point(i: int, **params) -> SweepPoint:
    return SweepPoint("fake_exp", {"i": i, **params}, seed=i)


def _cache(tmp_path, **kw) -> ResultCache:
    kw.setdefault("version", "1.0-test")
    kw.setdefault("rev", "deadbee")
    return ResultCache(str(tmp_path / "cache"), **kw)


def _age(cache: ResultCache, point: SweepPoint, seconds: float) -> None:
    """Backdate an entry's mtime so LRU ordering is deterministic."""
    path = pathlib.Path(cache.root) / f"{cache.key_for(point)}.json"
    st = path.stat()
    os.utime(path, (st.st_atime - seconds, st.st_mtime - seconds))


# ----------------------------------------------------------------------
# hit / miss
# ----------------------------------------------------------------------
def test_miss_then_hit(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    assert cache.get(p) is None
    cache.put(p, {"result": {"v": 42}})
    assert cache.get(p) == {"result": {"v": 42}}
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_param_change_misses(tmp_path):
    cache = _cache(tmp_path)
    cache.put(_point(0, knob="a"), {"result": 1})
    assert cache.get(_point(0, knob="b")) is None
    assert cache.get(_point(0, knob="a")) == {"result": 1}


def test_seed_change_misses(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    cache.put(p, {"result": 1})
    assert cache.get(SweepPoint(p.experiment, dict(p.params), seed=99)) is None


def test_param_order_does_not_matter(tmp_path):
    cache = _cache(tmp_path)
    cache.put(SweepPoint("e", {"a": 1, "b": 2}, seed=0), {"result": 1})
    assert cache.get(SweepPoint("e", {"b": 2, "a": 1}, seed=0)) == {"result": 1}


# ----------------------------------------------------------------------
# invalidation on version / revision change
# ----------------------------------------------------------------------
def test_version_bump_invalidates(tmp_path):
    old = _cache(tmp_path, version="1.0")
    old.put(_point(0), {"result": 1})
    new = _cache(tmp_path, version="1.1")
    assert new.get(_point(0)) is None
    # ...and the old entry is still intact for the old version.
    assert old.get(_point(0)) == {"result": 1}


def test_rev_change_invalidates(tmp_path):
    old = _cache(tmp_path, rev="aaaa111")
    old.put(_point(0), {"result": 1})
    new = _cache(tmp_path, rev="bbbb222")
    assert new.get(_point(0)) is None


def test_default_version_and_rev_resolve(tmp_path):
    import repro

    cache = ResultCache(str(tmp_path / "c"))
    assert cache.version == repro.__version__
    assert cache.rev  # "unknown" at worst, never None/empty


# ----------------------------------------------------------------------
# LRU + max-size eviction
# ----------------------------------------------------------------------
def test_lru_eviction_at_max_entries(tmp_path):
    cache = _cache(tmp_path, max_entries=3)
    points = [_point(i) for i in range(3)]
    for age, p in enumerate(points):
        cache.put(p, {"result": p.seed})
        _age(cache, p, seconds=100 - age)  # p0 oldest ... p2 newest
    # Touch the oldest entry: it becomes most-recently-used.
    assert cache.get(points[0]) is not None
    cache.put(_point(99), {"result": 99})
    # points[1] is now the LRU entry and must be the one evicted.
    assert cache.get(points[1]) is None
    assert cache.get(points[0]) is not None
    assert cache.get(points[2]) is not None
    assert cache.get(_point(99)) is not None
    assert cache.stats.evictions == 1
    assert len(cache) == 3


def test_max_bytes_eviction(tmp_path):
    cache = _cache(tmp_path, max_bytes=2048)
    blob = "x" * 512
    points = [_point(i) for i in range(8)]
    for age, p in enumerate(points):
        cache.put(p, {"result": blob})
        _age(cache, p, seconds=100 - age)
    assert cache.stats.evictions > 0
    total = sum(f.stat().st_size
                for f in pathlib.Path(cache.root).glob("*.json"))
    assert total <= 2048
    # Survivors are the most recently inserted ones.
    assert cache.get(points[-1]) is not None
    assert cache.get(points[0]) is None


# ----------------------------------------------------------------------
# corrupted-entry recovery
# ----------------------------------------------------------------------
def test_corrupt_entry_recovers_as_miss(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    cache.put(p, {"result": 1})
    path = pathlib.Path(cache.root) / f"{cache.key_for(p)}.json"
    path.write_text("{not json at all")
    assert cache.get(p) is None          # dropped, not raised
    assert not path.exists()
    assert cache.stats.corrupt_dropped == 1
    cache.put(p, {"result": 2})          # cache still fully usable
    assert cache.get(p) == {"result": 2}


def test_schema_mismatch_recovers_as_miss(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    cache.put(p, {"result": 1})
    path = pathlib.Path(cache.root) / f"{cache.key_for(p)}.json"
    path.write_text(json.dumps({"schema": "other/9", "value": {"r": 1}}))
    assert cache.get(p) is None
    assert cache.stats.corrupt_dropped == 1


def test_clear_and_describe(tmp_path):
    cache = _cache(tmp_path)
    for i in range(4):
        cache.put(_point(i), {"result": i})
    desc = cache.describe()
    assert desc["entries"] == 4 and desc["puts"] == 4
    assert cache.clear() == 4
    assert len(cache) == 0


# ----------------------------------------------------------------------
# mode-tagged keys (exact / derived / trace)
# ----------------------------------------------------------------------
def test_modes_have_distinct_keys(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    keys = {cache.key_for(p, mode=m) for m in ("exact", "derived", "trace")}
    assert len(keys) == 3


def test_exact_key_has_no_mode_field(tmp_path):
    """Untagged exact keys keep the schema-/1 key shape: old entries
    stay addressable and derived entries can never shadow them."""
    cache = _cache(tmp_path)
    p = _point(0)
    assert cache.key_for(p) == cache.key_for(p, mode="exact")
    cache.put(p, {"result": "exact"})
    cache.put(p, {"result": "derived"}, mode="derived")
    assert cache.get(p) == {"result": "exact"}
    assert cache.get(p, mode="derived") == {"result": "derived"}


def test_require_predicate_turns_hit_into_miss(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    cache.put(p, {"result": 1, "telemetry": None})
    missed = cache.get(p, require=lambda v: v.get("telemetry") is not None)
    assert missed is None
    assert cache.stats.misses == 1 and cache.stats.hits == 0
    # The entry itself is untouched — an unconditional get still hits.
    assert cache.get(p) == {"result": 1, "telemetry": None}


# ----------------------------------------------------------------------
# cost-aware eviction
# ----------------------------------------------------------------------
def test_expensive_entry_survives_cheap_fresher_one(tmp_path):
    cache = _cache(tmp_path, max_entries=2)
    costly, cheap, trigger = _point(0), _point(1), _point(2)
    cache.put(costly, {"result": 1}, cost=120.0)
    _age(cache, costly, seconds=100)           # oldest, but expensive
    cache.put(cheap, {"result": "x" * 256}, cost=0.01)
    _age(cache, cheap, seconds=50)
    cache.put(trigger, {"result": 3}, cost=60.0)
    assert cache.get(costly) is not None       # pure LRU would drop this
    assert cache.get(cheap) is None
    assert cache.stats.evictions == 1


def test_zero_cost_entries_degrade_to_lru(tmp_path):
    cache = _cache(tmp_path, max_entries=2)
    old, new, trigger = _point(0), _point(1), _point(2)
    cache.put(old, {"result": 1})
    _age(cache, old, seconds=100)
    cache.put(new, {"result": 2})
    _age(cache, new, seconds=50)
    cache.put(trigger, {"result": 3})
    assert cache.get(old) is None
    assert cache.get(new) is not None


# ----------------------------------------------------------------------
# stats: per-mode hits, recompute credit, persistence, recount
# ----------------------------------------------------------------------
def test_per_mode_hit_counters_and_recompute_credit(tmp_path):
    cache = _cache(tmp_path)
    e, d, t = _point(0), _point(1), _point(2)
    cache.put(e, {"result": 1}, cost=2.5)
    cache.put(d, {"result": 2}, mode="derived", cost=0.5)
    cache.put(t, {"trace": {}}, mode="trace", cost=4.0)
    cache.get(e)
    cache.get(d, mode="derived")
    cache.get(t, mode="trace")
    s = cache.stats
    assert (s.hits_exact, s.hits_derived, s.hits_trace) == (1, 1, 1)
    assert s.hits == 3
    assert s.recompute_seconds_saved == 7.0


def test_flush_stats_persists_deltas_once(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    cache.put(p, {"result": 1}, cost=3.0)
    cache.get(p)
    cache.flush_stats()
    cache.flush_stats()                        # no new activity: no-op
    persisted = cache.persistent_stats()
    assert persisted["hits"] == 1 and persisted["puts"] == 1
    assert persisted["recompute_seconds_saved"] == 3.0
    # In-memory stats survive the flush (the CLI prints them after).
    assert cache.stats.hits == 1
    # A second session accumulates on top.
    other = _cache(tmp_path)
    other.get(p)
    other.flush_stats()
    assert cache.persistent_stats()["hits"] == 2


def test_stats_sidecar_is_not_a_cache_entry(tmp_path):
    cache = _cache(tmp_path)
    cache.put(_point(0), {"result": 1})
    cache.flush_stats()
    assert cache.describe()["entries"] == 1
    assert len(cache) == 1


def test_describe_recounts_after_corrupt_drop(tmp_path):
    """Regression: describe() used to report stale entry/byte counts
    after a corrupt entry was dropped by get()."""
    cache = _cache(tmp_path)
    for i in range(3):
        cache.put(_point(i), {"result": i})
    before = cache.describe()
    assert before["entries"] == 3
    path = pathlib.Path(cache.root) / f"{cache.key_for(_point(1))}.json"
    path.write_text("{broken")
    assert cache.get(_point(1)) is None
    after = cache.describe()
    assert after["entries"] == 2
    assert after["bytes"] < before["bytes"]


def test_describe_deep_reports_modes_and_cost(tmp_path):
    cache = _cache(tmp_path)
    cache.put(_point(0), {"result": 1}, cost=1.0)
    cache.put(_point(1), {"result": 2}, mode="derived", cost=0.25)
    cache.put(_point(2), {"trace": {}}, mode="trace", cost=5.0)
    deep = cache.describe(deep=True)
    assert deep["by_mode"] == {"exact": 1, "derived": 1, "trace": 1}
    assert deep["stored_cost_seconds"] == {
        "exact": 1.0, "derived": 0.25, "trace": 5.0}
    assert "persistent" in deep
