"""The content-addressed result cache: keys, LRU eviction, recovery.

Eviction test shapes follow the related priority-expiry-cache repo:
drive the cache to its bound, touch an entry to refresh its recency,
and check exactly the least-recently-used entry disappeared.
"""

import json
import os
import pathlib

from repro.sweep import ResultCache, SweepPoint


def _point(i: int, **params) -> SweepPoint:
    return SweepPoint("fake_exp", {"i": i, **params}, seed=i)


def _cache(tmp_path, **kw) -> ResultCache:
    kw.setdefault("version", "1.0-test")
    kw.setdefault("rev", "deadbee")
    return ResultCache(str(tmp_path / "cache"), **kw)


def _age(cache: ResultCache, point: SweepPoint, seconds: float) -> None:
    """Backdate an entry's mtime so LRU ordering is deterministic."""
    path = pathlib.Path(cache.root) / f"{cache.key_for(point)}.json"
    st = path.stat()
    os.utime(path, (st.st_atime - seconds, st.st_mtime - seconds))


# ----------------------------------------------------------------------
# hit / miss
# ----------------------------------------------------------------------
def test_miss_then_hit(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    assert cache.get(p) is None
    cache.put(p, {"result": {"v": 42}})
    assert cache.get(p) == {"result": {"v": 42}}
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_param_change_misses(tmp_path):
    cache = _cache(tmp_path)
    cache.put(_point(0, knob="a"), {"result": 1})
    assert cache.get(_point(0, knob="b")) is None
    assert cache.get(_point(0, knob="a")) == {"result": 1}


def test_seed_change_misses(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    cache.put(p, {"result": 1})
    assert cache.get(SweepPoint(p.experiment, dict(p.params), seed=99)) is None


def test_param_order_does_not_matter(tmp_path):
    cache = _cache(tmp_path)
    cache.put(SweepPoint("e", {"a": 1, "b": 2}, seed=0), {"result": 1})
    assert cache.get(SweepPoint("e", {"b": 2, "a": 1}, seed=0)) == {"result": 1}


# ----------------------------------------------------------------------
# invalidation on version / revision change
# ----------------------------------------------------------------------
def test_version_bump_invalidates(tmp_path):
    old = _cache(tmp_path, version="1.0")
    old.put(_point(0), {"result": 1})
    new = _cache(tmp_path, version="1.1")
    assert new.get(_point(0)) is None
    # ...and the old entry is still intact for the old version.
    assert old.get(_point(0)) == {"result": 1}


def test_rev_change_invalidates(tmp_path):
    old = _cache(tmp_path, rev="aaaa111")
    old.put(_point(0), {"result": 1})
    new = _cache(tmp_path, rev="bbbb222")
    assert new.get(_point(0)) is None


def test_default_version_and_rev_resolve(tmp_path):
    import repro

    cache = ResultCache(str(tmp_path / "c"))
    assert cache.version == repro.__version__
    assert cache.rev  # "unknown" at worst, never None/empty


# ----------------------------------------------------------------------
# LRU + max-size eviction
# ----------------------------------------------------------------------
def test_lru_eviction_at_max_entries(tmp_path):
    cache = _cache(tmp_path, max_entries=3)
    points = [_point(i) for i in range(3)]
    for age, p in enumerate(points):
        cache.put(p, {"result": p.seed})
        _age(cache, p, seconds=100 - age)  # p0 oldest ... p2 newest
    # Touch the oldest entry: it becomes most-recently-used.
    assert cache.get(points[0]) is not None
    cache.put(_point(99), {"result": 99})
    # points[1] is now the LRU entry and must be the one evicted.
    assert cache.get(points[1]) is None
    assert cache.get(points[0]) is not None
    assert cache.get(points[2]) is not None
    assert cache.get(_point(99)) is not None
    assert cache.stats.evictions == 1
    assert len(cache) == 3


def test_max_bytes_eviction(tmp_path):
    cache = _cache(tmp_path, max_bytes=2048)
    blob = "x" * 512
    points = [_point(i) for i in range(8)]
    for age, p in enumerate(points):
        cache.put(p, {"result": blob})
        _age(cache, p, seconds=100 - age)
    assert cache.stats.evictions > 0
    total = sum(f.stat().st_size
                for f in pathlib.Path(cache.root).glob("*.json"))
    assert total <= 2048
    # Survivors are the most recently inserted ones.
    assert cache.get(points[-1]) is not None
    assert cache.get(points[0]) is None


# ----------------------------------------------------------------------
# corrupted-entry recovery
# ----------------------------------------------------------------------
def test_corrupt_entry_recovers_as_miss(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    cache.put(p, {"result": 1})
    path = pathlib.Path(cache.root) / f"{cache.key_for(p)}.json"
    path.write_text("{not json at all")
    assert cache.get(p) is None          # dropped, not raised
    assert not path.exists()
    assert cache.stats.corrupt_dropped == 1
    cache.put(p, {"result": 2})          # cache still fully usable
    assert cache.get(p) == {"result": 2}


def test_schema_mismatch_recovers_as_miss(tmp_path):
    cache = _cache(tmp_path)
    p = _point(0)
    cache.put(p, {"result": 1})
    path = pathlib.Path(cache.root) / f"{cache.key_for(p)}.json"
    path.write_text(json.dumps({"schema": "other/9", "value": {"r": 1}}))
    assert cache.get(p) is None
    assert cache.stats.corrupt_dropped == 1


def test_clear_and_describe(tmp_path):
    cache = _cache(tmp_path)
    for i in range(4):
        cache.put(_point(i), {"result": i})
    desc = cache.describe()
    assert desc["entries"] == 4 and desc["puts"] == 4
    assert cache.clear() == 4
    assert len(cache) == 0
