"""Tests for the observability layer (repro.observe)."""

import io

import pytest

from repro import observe
from repro.connections import Buffer, In, Out
from repro.gals import LocalClockGenerator
from repro.kernel import Simulator
from repro.noc import Mesh


def _producer_consumer(sim, clk, n=40, consumer_stall_every=10):
    chan = Buffer(sim, clk, capacity=4, name="demo")
    src, dst = Out(chan), In(chan)

    def producer():
        for i in range(n):
            yield from src.push(i)

    def consumer():
        for i in range(n):
            yield from dst.pop()
            if consumer_stall_every and i % consumer_stall_every == 0:
                yield 3  # periodic consumer stall -> backpressure upstream

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    return chan


# ----------------------------------------------------------------------
# zero-overhead default
# ----------------------------------------------------------------------
def test_telemetry_disabled_by_default():
    sim = Simulator()
    assert sim.telemetry is None
    clk = sim.add_clock("clk", period=10)
    chan = _producer_consumer(sim, clk)
    sim.run(until=10_000)
    # The opt-in layer never attached: no hub, no histogram objects.
    assert chan.telemetry is None
    # The always-on counters still work.
    assert chan.stats.transfers == 40


def test_no_capture_leaks_between_sessions():
    with observe.capture() as session:
        sim = Simulator()
        assert sim.telemetry is not None
    assert observe.active_session() is None
    assert Simulator().telemetry is None
    assert session.hubs and session.hubs[0].sim is sim


# ----------------------------------------------------------------------
# kernel counters
# ----------------------------------------------------------------------
def test_kernel_counters_count_scheduler_work():
    sim = Simulator(telemetry=True)
    clk = sim.add_clock("clk", period=10)
    _producer_consumer(sim, clk)
    sim.run(until=5_000)
    k = sim.telemetry.kernel
    assert k.events_fired > 0
    assert k.timesteps > 0
    assert k.delta_cycles > 0
    assert k.max_deltas_per_step >= 1
    assert k.thread_wakeups > 0
    # Per-thread wall-time profile covers both threads.
    assert set(k.proc_seconds) == {"p", "c"}
    assert all(t >= 0.0 for t in k.proc_seconds.values())


def test_explicit_opt_out_inside_capture():
    with observe.capture():
        sim = Simulator(telemetry=False)
        assert sim.telemetry is None


# ----------------------------------------------------------------------
# channel telemetry
# ----------------------------------------------------------------------
def test_channel_occupancy_histogram_and_stalls():
    sim = Simulator(telemetry=True)
    clk = sim.add_clock("clk", period=10)
    chan = _producer_consumer(sim, clk, n=40, consumer_stall_every=8)
    sim.run(until=10_000)
    tel = chan.telemetry
    assert tel is not None
    # Histogram accounts for every observed cycle.
    assert sum(tel.occupancy_hist.values()) == tel.cycles
    assert tel.max_occupancy <= chan.capacity
    # Consumer stalls show up on both sides of the handshake.
    assert tel.valid_not_ready_cycles > 0
    assert tel.backpressure_cycles > 0
    assert chan.stats.push_rejections > 0
    assert chan.stats.pop_rejections > 0


def test_mesh_registers_links_and_routers():
    sim = Simulator(telemetry=True)
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=2, height=2)
    mesh.ni(0).send(3, ["ping", "pong"])
    mesh.ni(3).send(0, ["back"])
    sim.run(until=3_000)
    assert mesh.ni(3).received and mesh.ni(0).received
    assert mesh in sim.telemetry.meshes
    # 2x2 mesh: 4 bidirectional edges -> 8 directed links.
    assert len(mesh.links) == 8
    util = mesh.link_utilization()
    assert len(util) == 8
    assert any(u > 0 for u in util.values())
    assert mesh.total_flits_forwarded > 0
    assert all(r.output_stall_cycles >= 0 for r in mesh.routers)


def test_clock_generator_registers_and_reports_activity():
    sim = Simulator(telemetry=True)
    gen = LocalClockGenerator(sim, "dom0", nominal_period=909)
    sim.add_thread(iter([]), gen.clock, name="t")
    sim.run(until=50_000)
    assert gen in sim.telemetry.clock_generators
    act = gen.activity()
    assert act["edges"] > 0
    assert act["mean_period"] == pytest.approx(909.0)
    assert act["effective_margin"] >= 0.0
    assert act["paused_edges"] == 0


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def _small_report():
    with observe.capture() as session:
        sim = Simulator()
        clk = sim.add_clock("clk", period=10)
        _producer_consumer(sim, clk)
        sim.run(until=5_000)
    return session.report(label="unit")


def test_report_collects_all_sections():
    report = _small_report()
    assert report.label == "unit" and report.simulators == 1
    assert report.kernel["events_fired"] > 0
    [chan_row] = report.channels
    assert chan_row["name"] == "demo" and chan_row["transfers"] == 40
    assert chan_row["valid_not_ready_cycles"] >= 0
    [clock_row] = report.clocks
    assert clock_row["name"] == "clk" and clock_row["cycles"] > 0
    assert any(e["event"] == "channel-registered" for e in report.events)


def test_format_report_mentions_key_counters():
    text = observe.format_report(_small_report())
    assert "events fired" in text
    assert "demo" in text
    assert "valid-but-not-ready" in text
    assert "clock domains" in text


def test_merge_sums_kernel_counters():
    r1, r2 = _small_report(), _small_report()
    merged = observe.merge([r1, r2], label="both")
    assert merged.simulators == 2
    assert (merged.kernel["events_fired"]
            == r1.kernel["events_fired"] + r2.kernel["events_fired"])
    assert len(merged.channels) == 2


def test_report_jsonl_round_trip():
    report = _small_report()
    buf = io.StringIO()
    n = observe.write_jsonl(observe.to_records(report), buf)
    assert n == len(observe.to_records(report))
    buf.seek(0)
    restored = observe.from_records(observe.read_jsonl(buf))
    assert restored == report


def test_collect_on_disabled_sim_gives_zeroed_kernel():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    _producer_consumer(sim, clk)
    sim.run(until=5_000)
    report = observe.collect(sim, label="off")
    assert report.kernel["events_fired"] == 0
    assert report.channels == []          # no hub -> no channel registry
    assert report.clocks[0]["cycles"] > 0  # always-on counters still there


# ----------------------------------------------------------------------
# event log
# ----------------------------------------------------------------------
def test_event_log_emit_and_jsonl():
    log = observe.EventLog()
    log.emit("run-complete", now=123, events=7)
    log.emit("note", text="hello world")
    assert len(log) == 2
    assert [r["seq"] for r in log] == [0, 1]
    buf = io.StringIO()
    observe.write_jsonl(log.records, buf)
    buf.seek(0)
    assert observe.read_jsonl(buf) == log.records


def test_from_records_rejects_unknown_section():
    with pytest.raises(ValueError):
        observe.from_records([{"section": "bogus"}])
