"""Unit tests for the job-oriented execution core (:mod:`repro.jobs`)."""

import dataclasses
import json

import pytest

from repro import registry
from repro.jobs import KINDS, JobRequest, JobResult, execute
from repro.sweep.point import SweepPoint


def test_request_is_frozen_plain_data():
    req = JobRequest(experiment="backend")
    with pytest.raises(dataclasses.FrozenInstanceError):
        req.experiment = "other"
    assert req.kind == "experiment"
    assert req.backend == "threaded"
    assert req.params == {}


def test_request_rejects_unknown_kind():
    with pytest.raises(ValueError, match="kind"):
        JobRequest(experiment="backend", kind="nope")
    assert KINDS == ("experiment", "point")


def test_point_requests_require_a_seed():
    with pytest.raises(ValueError, match="seed"):
        JobRequest(experiment="li_latency", kind="point")


def test_identity_omits_default_backend():
    default = JobRequest(experiment="backend").identity()
    assert "backend" not in default
    compiled = JobRequest(experiment="backend",
                          backend="compiled").identity()
    assert compiled["backend"] == "compiled"


def test_from_point_round_trips_the_sweep_point():
    point = SweepPoint(experiment="li_latency",
                       params={"depth": 2, "payload": 3}, seed=11)
    req = JobRequest.from_point(point)
    assert req.kind == "point"
    assert req.experiment == "li_latency"
    assert req.params == {"depth": 2, "payload": 3}
    assert req.seed == 11


def test_execute_analytic_experiment_matches_direct_runner():
    spec = registry.get("backend")
    result = execute(JobRequest(experiment="backend"))
    assert isinstance(result, JobResult)
    assert result.payload == spec.runner({}, None)
    assert result.text == spec.formatter(result.payload)
    assert result.schema == "backend"
    assert result.schema_version == 1
    assert result.wall_seconds >= 0.0
    assert result.session is None  # no telemetry, no trace requested


def test_execute_point_kind_uses_the_sweep_runner():
    sweep = registry.get_sweep("gals_overhead")
    point = sweep.space()[0]
    job = execute(JobRequest.from_point(point))
    direct = sweep.runner(dict(point.params), point.seed)
    assert job.payload == direct
    assert job.text is None  # points have no CLI formatter


def test_execute_unknown_experiment_raises_registry_error():
    with pytest.raises(KeyError, match="unknown experiment"):
        execute(JobRequest(experiment="nope"))


def test_provenance_line_formats_backend_and_fallback():
    base = execute(JobRequest(experiment="backend"))
    assert base.provenance().startswith("simulation backend: ")
    forced = dataclasses.replace(base, backend="threaded",
                                 fallback_reason="demo reason")
    assert forced.provenance() == ("simulation backend: threaded "
                                   "(fallback: demo reason)")


def test_telemetry_flag_yields_a_report_session():
    job = execute(JobRequest(experiment="fig3",
                             params={"ports": "2", "txns": 3},
                             seed=1, telemetry=True),
                  telemetry_label="fig3")
    assert job.session is not None
    report = job.session.report(label="fig3")
    assert report.label == "fig3"


def test_canonical_payload_and_write_json_agree(tmp_path):
    job = execute(JobRequest(experiment="productivity"))
    path = tmp_path / "job.json"
    job.write_json(str(path))
    on_disk = json.loads(path.read_text())
    assert on_disk == job.canonical_payload()


def test_write_json_is_deterministic_across_runs(tmp_path):
    a, b = (execute(JobRequest(experiment="backend")) for _ in range(2))
    pa, pb = tmp_path / "a.json", tmp_path / "b.json"
    a.write_json(str(pa))
    b.write_json(str(pb))
    assert pa.read_bytes() == pb.read_bytes()
