"""Differential tests: ``repro run <name>`` vs each legacy verb.

The tentpole's byte-identity guarantee: the generic ``run`` verb and
the dedicated experiment verbs resolve to the same registered runner
with the same defaults, so their ``--json`` dumps agree byte-for-byte
modulo the serializer's documented wall-clock fields
(:data:`repro.sweep.serialize.NONDETERMINISTIC_FIELDS` — the only keys
two otherwise-identical runs may legitimately differ in), and their
stdout agrees exactly for every experiment whose table contains no
wall-clock-derived number.
"""

import json

import pytest

from repro import registry
from repro.cli import main
from repro.sweep.serialize import NONDETERMINISTIC_FIELDS

#: Per-experiment shrunken arguments: (legacy verb flags, run -p form).
#: Both spellings must describe the same parameter values.
FAST_ARGS = {
    "fig3": (["--ports", "2", "--txns", "5"],
             ["-p", "ports=2", "-p", "txns=5"]),
    "verify": (["--max-examples", "4", "--checks", "differential,li"],
               ["-p", "max_examples=4", "-p", "checks=differential,li"]),
}

#: Experiments whose formatted table embeds wall-clock-derived numbers
#: (fig6 speedups, crossbar-qor compile ratios) — JSON is still
#: compared, stdout is not.
WALL_CLOCK_TEXT = {"fig6", "crossbar-qor"}


def _strip(obj):
    """Recursively drop the serializer's nondeterministic keys."""
    if isinstance(obj, dict):
        return {k: _strip(v) for k, v in obj.items()
                if k not in NONDETERMINISTIC_FIELDS}
    if isinstance(obj, list):
        return [_strip(v) for v in obj]
    return obj


def _canonical(path):
    return json.dumps(_strip(json.loads(path.read_text())),
                      sort_keys=True)


@pytest.fixture
def tiny_fig6(monkeypatch):
    """Shrink fig6 to one tiny workload (the default takes minutes)."""
    from repro.workloads.soc_workloads import vector_scale_workload

    monkeypatch.setattr(
        "repro.experiments.fig6_soc.fig6_workloads_small",
        lambda: [vector_scale_workload(n_pes=2, n_per_pe=4)])


@pytest.mark.parametrize("name", registry.names(runnable=True))
def test_run_verb_matches_legacy_verb(name, tmp_path, capsys, request):
    if name == "fig6":
        request.getfixturevalue("tiny_fig6")
    legacy_flags, run_params = FAST_ARGS.get(name, ([], []))
    seed = ["--seed", "3"] if registry.get(name).seedable else []
    a, b = tmp_path / "legacy.json", tmp_path / "run.json"

    assert main([name, *legacy_flags, *seed, "--json", str(a)]) == 0
    legacy_out = capsys.readouterr().out
    assert main(["run", name, *run_params, *seed,
                 "--json", str(b)]) == 0
    run_out = capsys.readouterr().out

    assert _canonical(a) == _canonical(b)
    if name not in WALL_CLOCK_TEXT:
        assert (legacy_out.replace(str(a), "OUT")
                == run_out.replace(str(b), "OUT"))


def test_run_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["run", "frobnicate"])


def test_run_rejects_unknown_parameter(capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig3", "-p", "bogus=1"])
    err = capsys.readouterr().err
    assert "no parameter 'bogus'" in err
    assert "ports" in err  # the error names the known parameters


def test_run_rejects_malformed_parameter():
    with pytest.raises(SystemExit):
        main(["run", "fig3", "-p", "ports"])


def test_run_param_values_go_through_declared_types(tmp_path, capsys):
    # txns is declared type=int: "5" must parse, "x" must not.
    assert main(["run", "fig3", "-p", "ports=2", "-p", "txns=5",
                 "--seed", "1"]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["run", "fig3", "-p", "txns=x"])


def test_describe_covers_every_runnable_experiment(capsys):
    for name in registry.names(runnable=True):
        assert main(["describe", name]) == 0
        out = capsys.readouterr().out
        spec = registry.get(name)
        assert spec.summary in out
        assert f"{spec.schema}/v{spec.schema_version}" in out
        for param in spec.params:
            assert param.flag in out


def test_list_shows_capability_tags(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "available experiments" in out
    assert "sweep:fig3_crossbar" in out
    assert "faults:stall_verification" in out
    assert "replay:trace" in out
    assert "run <experiment>" in out and "describe <experiment>" in out
