"""Completeness checks for the unified experiment registry.

Every capability the CLI, sweep engine, and fault campaigns consume is
derived from :mod:`repro.registry`; these tests pin down the catalog's
shape so a missing registration (or a drifting deprecated view) fails
loudly instead of silently dropping an experiment from a verb.
"""

import pytest

from repro import registry

#: The nine paper experiments plus adaptive-clocking and the generative
#: verification campaign, in `repro list` order — extend this when a new
#: experiment module registers a spec.
RUNNABLE = [
    "fig3", "fig6", "crossbar-qor", "hls-qor", "gals",
    "adaptive-clocking", "stalls", "li-latency", "backend",
    "productivity", "verify",
]
HIDDEN = ["packet_stream", "deadlock_demo", "fault_campaign"]


def test_catalog_lists_every_experiment_in_order():
    assert registry.names(runnable=True) == RUNNABLE


def test_hidden_specs_registered_but_not_runnable():
    all_names = registry.names(hidden=True)
    for name in HIDDEN:
        assert name in all_names
        assert not registry.get(name).runnable
    assert not set(HIDDEN) & set(registry.names())


@pytest.mark.parametrize("name", RUNNABLE)
def test_runnable_spec_is_complete(name):
    spec = registry.get(name)
    assert callable(spec.runner)
    assert callable(spec.formatter)
    assert spec.summary
    assert spec.schema and spec.schema_version >= 1
    # Runner and formatter compose for every runnable spec: that is the
    # contract `repro run` and the legacy verbs rely on.  (Execution is
    # covered by the CLI parity suite; here we only require presence.)
    caps = spec.capabilities()
    assert set(caps) == {"design", "sweep", "replay", "harness",
                        "compiled", "seedable", "schema", "warm"}


def test_specs_sorted_by_order_then_name():
    orders = [(s.order, s.name) for s in registry.specs(hidden=True)]
    assert orders == sorted(orders)


def test_every_sweep_has_a_resolvable_owner():
    for sweep_name in registry.sweep_specs_view():
        owner = registry.sweep_owner(sweep_name)
        assert owner is not None
        assert owner.sweep is not None
        assert owner.sweep.name == sweep_name
        assert registry.get_sweep(sweep_name) is owner.sweep


def test_every_harness_resolves_by_name():
    for harness_name, harness in registry.harnesses_view().items():
        assert registry.get_harness(harness_name) is harness
        assert harness.name == harness_name


def test_design_capability_matches_view():
    view = registry.design_builders_view()
    for name in registry.names(runnable=True):
        assert name in view
        spec = registry.get(name)
        if spec.design is None:
            with pytest.raises(ValueError, match="analytic"):
                registry.build_design(name)
        else:
            assert view[name] is spec.design


def test_unknown_lookups_preserve_legacy_messages():
    with pytest.raises(KeyError, match="unknown experiment 'nope'"):
        registry.build_design("nope")
    with pytest.raises(KeyError, match="unknown sweep experiment 'nope'"):
        registry.get_sweep("nope")
    with pytest.raises(KeyError, match="unknown fault-campaign harness"):
        registry.get_harness("nope")


def test_declared_compiled_eligibility():
    compiled = {n for n in RUNNABLE if registry.get(n).compiled}
    assert compiled == {"fig3", "fig6", "stalls", "li-latency"}


def test_declared_seedability():
    seedable = {n for n in RUNNABLE if registry.get(n).seedable}
    assert seedable == {"fig3", "adaptive-clocking", "stalls",
                        "li-latency", "verify"}


# ----------------------------------------------------------------------
# deprecated views: the four legacy registries' import surfaces
# ----------------------------------------------------------------------
def test_design_builders_alias_is_live_view():
    from repro.experiments.designs import DESIGN_BUILDERS

    assert sorted(DESIGN_BUILDERS) == sorted(registry.names(runnable=True))
    assert DESIGN_BUILDERS["fig3"] is registry.get("fig3").design
    assert DESIGN_BUILDERS["backend"] is None  # analytic


def test_sweep_specs_alias_preserves_identity():
    from repro.experiments.sweeps import SWEEP_SPECS

    for name, spec in SWEEP_SPECS.items():
        assert spec.name == name
        assert SWEEP_SPECS[name] is spec  # view returns stored objects


def test_harnesses_alias_matches_registry_order():
    from repro.faults.campaign import HARNESSES

    assert list(HARNESSES) == ["stall_verification", "fig3_crossbar",
                               "gals_overhead", "packet_stream",
                               "deadlock_demo"]
    for name, harness in HARNESSES.items():
        assert registry.get_harness(name) is harness


def test_commands_alias_matches_runnable_specs():
    from repro.cli import _COMMANDS

    assert sorted(_COMMANDS) == sorted(registry.names(runnable=True))


def test_views_reflect_later_registrations():
    view = registry.sweep_specs_view()
    name = "registry_view_probe"
    assert name not in view
    sweep = registry.SweepSpec(name=name, help="probe",
                               space=lambda **kw: [], runner=lambda p: {})
    registry.register_sweep(sweep)
    try:
        assert view[name] is sweep
        assert registry.get(name).hidden
    finally:
        registry._SPECS.pop(name, None)
        registry._SWEEP_INDEX.pop(name, None)
    assert name not in view


def test_cross_spec_sweep_name_collision_rejected():
    taken = registry.get("fig3").sweep.name
    clash = registry.ExperimentSpec(
        name="collision_probe", summary="probe",
        sweep=registry.SweepSpec(name=taken, help="clash",
                                 space=lambda **kw: [],
                                 runner=lambda p: {}))
    with pytest.raises(ValueError, match="already registered"):
        registry.register(clash)
    assert "collision_probe" not in registry._SPECS


# ----------------------------------------------------------------------
# satellite regression: faults CLI choices == HARNESSES keys
# ----------------------------------------------------------------------
def test_faults_cli_choices_derive_from_registry():
    from repro.cli import _build_parser
    from repro.faults.campaign import HARNESSES

    parser = _build_parser()
    sub = next(a for a in parser._actions
               if isinstance(a, type(parser._subparsers._group_actions[0])))
    faults = sub.choices["faults"]
    choice_action = next(a for a in faults._actions
                         if a.dest == "experiment")
    assert tuple(choice_action.choices) == tuple(HARNESSES) + ("all",)


def test_sweep_cli_choices_derive_from_registry():
    from repro.cli import _build_parser

    parser = _build_parser()
    sweep = parser._subparsers._group_actions[0].choices["sweep"]
    choice_action = next(a for a in sweep._actions
                         if a.dest == "experiment")
    assert sorted(choice_action.choices) == sorted(
        registry.sweep_specs_view())
