"""Every bundled experiment elaborates and lints clean (the CI gate)."""

import pytest

from repro.design import design_path, elaborate, lint
from repro.experiments.designs import DESIGN_BUILDERS, build_design

_BUILDABLE = sorted(name for name, builder in DESIGN_BUILDERS.items()
                    if builder is not None)
_ANALYTIC = sorted(name for name, builder in DESIGN_BUILDERS.items()
                   if builder is None)


@pytest.mark.parametrize("experiment", _BUILDABLE)
def test_experiment_design_lints_clean(experiment):
    sim = build_design(experiment)
    findings = lint(sim)
    assert findings == [], "\n".join(str(f) for f in findings)


@pytest.mark.parametrize("experiment", _BUILDABLE)
def test_experiment_design_elaborates(experiment):
    graph = elaborate(build_design(experiment))
    stats = graph.stats()
    assert stats["instances"] > 1
    assert stats["clocks"] > 0
    assert graph.tree(max_depth=1)


@pytest.mark.parametrize("experiment", _ANALYTIC)
def test_analytic_experiments_report_no_design(experiment):
    with pytest.raises(ValueError, match="analytic"):
        build_design(experiment)


def test_unknown_experiment_raises_key_error():
    with pytest.raises(KeyError, match="unknown experiment"):
        build_design("nope")


def test_registry_covers_every_cli_experiment():
    from repro.cli import _COMMANDS

    assert sorted(DESIGN_BUILDERS) == sorted(_COMMANDS)


def test_soc_units_have_hierarchical_paths():
    sim = build_design("fig6")
    graph = elaborate(sim)
    paths = {inst.path for inst in graph.instances}
    assert "chip" in paths
    assert "chip.mesh" in paths
    assert "chip.pe0" in paths
    assert "chip.axix" in paths
    # Router ports live three levels deep with honest dotted paths.
    router = graph.instance("chip.mesh.r0")
    assert router.ports and all(
        p.path.startswith("chip.mesh.r0.") for p in router.ports)


def test_gals_design_has_cdc_safe_links_and_many_domains():
    sim = build_design("gals")
    graph = elaborate(sim)
    assert len(graph.clocks) > 1
    crossings = graph.crossings()
    assert crossings, "a GALS mesh must contain clock-domain crossings"
    assert all(rec.cdc_safe for rec in crossings)
