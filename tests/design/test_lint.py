"""Each lint rule: one positive (fires) and one negative (clean) case."""

import pytest

from repro.connections import Buffer, In, Out
from repro.design import (
    LINT_RULES,
    component_scope,
    elaborate,
    format_findings,
    lint,
)
from repro.kernel import Simulator


def _sim_clk(name="clk", period=10):
    sim = Simulator()
    return sim, sim.add_clock(name, period=period)


def _rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# unbound-port
# ----------------------------------------------------------------------

def test_unbound_port_fires():
    sim, clk = _sim_clk()
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        In(name="in")  # never bound
    findings = lint(sim, rules=["unbound-port"])
    assert len(findings) == 1
    assert findings[0].path == "dut.in"


def test_optional_port_may_stay_unbound():
    sim, clk = _sim_clk()
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        In(name="edge", optional=True)
    assert lint(sim, rules=["unbound-port"]) == []


# ----------------------------------------------------------------------
# dangling-channel
# ----------------------------------------------------------------------

def test_dangling_channel_fires_on_consumer_only():
    sim, clk = _sim_clk()
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        chan = Buffer(sim, clk, capacity=2, name="q")
        In(chan, name="in")  # consumer but no producer
    findings = lint(sim, rules=["dangling-channel"])
    assert len(findings) == 1 and findings[0].path == "dut.q"
    assert "no producer" in findings[0].message


def test_dangling_channel_fires_on_producer_only():
    sim, clk = _sim_clk()
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        chan = Buffer(sim, clk, capacity=2, name="q")
        Out(chan, name="out")  # producer but no consumer
    findings = lint(sim, rules=["dangling-channel"])
    assert len(findings) == 1 and "no consumer" in findings[0].message


def test_fully_wired_or_testbench_channels_are_clean():
    sim, clk = _sim_clk()
    wired = Buffer(sim, clk, capacity=2, name="wired")
    Buffer(sim, clk, capacity=2, name="bare")  # zero endpoints: testbench
    with component_scope(sim, "a", kind="A", clock=clk):
        Out(wired, name="out")
    with component_scope(sim, "b", kind="B", clock=clk):
        In(wired, name="in")
    assert lint(sim, rules=["dangling-channel"]) == []


# ----------------------------------------------------------------------
# duplicate-name
# ----------------------------------------------------------------------

def test_duplicate_name_fires_on_explicit_collision():
    sim, clk = _sim_clk()
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        Buffer(sim, clk, capacity=2, name="q")
        Buffer(sim, clk, capacity=2, name="q")
    findings = lint(sim, rules=["duplicate-name"])
    assert len(findings) == 1
    assert "auto-renamed to 'q_1'" in findings[0].message


def test_duplicate_name_silent_for_default_names():
    sim, clk = _sim_clk()
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        Buffer(sim, clk, capacity=2)
        Buffer(sim, clk, capacity=2)
    assert lint(sim, rules=["duplicate-name"]) == []


# ----------------------------------------------------------------------
# multi-driver
# ----------------------------------------------------------------------

def test_multi_driver_fires():
    sim, clk = _sim_clk()
    chan = Buffer(sim, clk, capacity=2, name="shared")
    with component_scope(sim, "a", kind="A", clock=clk):
        Out(chan, name="out")
    with component_scope(sim, "b", kind="B", clock=clk):
        Out(chan, name="out")
    with component_scope(sim, "c", kind="C", clock=clk):
        In(chan, name="in")
    findings = lint(sim, rules=["multi-driver"])
    assert len(findings) == 1 and findings[0].path == "shared"
    assert "a.out" in findings[0].message and "b.out" in findings[0].message


def test_single_driver_is_clean():
    sim, clk = _sim_clk()
    chan = Buffer(sim, clk, capacity=2, name="one")
    with component_scope(sim, "a", kind="A", clock=clk):
        Out(chan, name="out")
    with component_scope(sim, "b", kind="B", clock=clk):
        In(chan, name="in")
    assert lint(sim, rules=["multi-driver"]) == []


# ----------------------------------------------------------------------
# unsynchronized-crossing
# ----------------------------------------------------------------------

def test_unsynchronized_crossing_fires():
    sim = Simulator()
    clk_a = sim.add_clock("clk_a", period=10)
    clk_b = sim.add_clock("clk_b", period=13)
    chan = Buffer(sim, clk_a, capacity=2, name="x")
    with component_scope(sim, "tx", kind="TX", clock=clk_a):
        Out(chan, name="out")
    with component_scope(sim, "rx", kind="RX", clock=clk_b):
        In(chan, name="in")
    findings = lint(sim, rules=["unsynchronized-crossing"])
    assert len(findings) == 1
    assert "clk_a" in findings[0].message and "clk_b" in findings[0].message


def test_gals_link_mediated_crossing_is_clean():
    from repro.gals import GalsLink

    sim = Simulator()
    clk_a = sim.add_clock("clk_a", period=10)
    clk_b = sim.add_clock("clk_b", period=13)
    link = GalsLink(sim, clk_a, clk_b, name="xing")
    with component_scope(sim, "tx", kind="TX", clock=clk_a):
        Out(link, name="out")
    with component_scope(sim, "rx", kind="RX", clock=clk_b):
        In(link, name="in")
    assert lint(sim, rules=["unsynchronized-crossing"]) == []


def test_same_domain_endpoints_are_clean():
    sim, clk = _sim_clk()
    chan = Buffer(sim, clk, capacity=2, name="x")
    with component_scope(sim, "tx", kind="TX", clock=clk):
        Out(chan, name="out")
    with component_scope(sim, "rx", kind="RX", clock=clk):
        In(chan, name="in")
    assert lint(sim, rules=["unsynchronized-crossing"]) == []


# ----------------------------------------------------------------------
# channel-cycle
# ----------------------------------------------------------------------

def _ring(sim, clk, *, waive=False):
    """a -> b -> a over two channels; optionally waive instance a."""
    ab = Buffer(sim, clk, capacity=2, name="ab")
    ba = Buffer(sim, clk, capacity=2, name="ba")
    attrs = {"deadlock_free": "credit-based"} if waive else None
    with component_scope(sim, "a", kind="A", clock=clk, attrs=attrs):
        Out(ab, name="out")
        In(ba, name="in")
    with component_scope(sim, "b", kind="B", clock=clk):
        In(ab, name="in")
        Out(ba, name="out")


def test_channel_cycle_fires_on_ring():
    sim, clk = _sim_clk()
    _ring(sim, clk)
    findings = lint(sim, rules=["channel-cycle"])
    assert len(findings) == 1
    assert "{a, b}" in findings[0].message


def test_deadlock_free_annotation_waives_cycle():
    sim, clk = _sim_clk()
    _ring(sim, clk, waive=True)
    assert lint(sim, rules=["channel-cycle"]) == []


def test_root_testbench_loops_do_not_count_as_cycles():
    # src (root) -> dut -> sink (root): folding the root scope into one
    # node must not fabricate a cycle.
    sim, clk = _sim_clk()
    up = Buffer(sim, clk, capacity=2, name="up")
    down = Buffer(sim, clk, capacity=2, name="down")
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        In(up, name="in")
        Out(down, name="out")
    Out(up)      # testbench driver at root
    In(down)     # testbench sink at root
    assert lint(sim, rules=["channel-cycle"]) == []


def test_acyclic_pipeline_is_clean():
    sim, clk = _sim_clk()
    ab = Buffer(sim, clk, capacity=2, name="ab")
    bc = Buffer(sim, clk, capacity=2, name="bc")
    with component_scope(sim, "a", kind="A", clock=clk):
        Out(ab, name="out")
    with component_scope(sim, "b", kind="B", clock=clk):
        In(ab, name="in")
        Out(bc, name="out")
    with component_scope(sim, "c", kind="C", clock=clk):
        In(bc, name="in")
    assert lint(sim, rules=["channel-cycle"]) == []


# ----------------------------------------------------------------------
# framework
# ----------------------------------------------------------------------

def test_all_rules_run_by_default():
    sim, clk = _sim_clk()
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        In(name="in")
    assert _rules_of(lint(sim)) == ["unbound-port"]


def test_rule_registry_is_complete():
    assert sorted(LINT_RULES) == [
        "channel-cycle", "dangling-channel", "duplicate-name",
        "multi-driver", "unbound-port", "unsynchronized-crossing",
    ]


def test_format_findings_clean_and_dirty():
    sim, clk = _sim_clk()
    assert format_findings(lint(sim)) == "clean: 0 findings"
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        In(name="in")
    text = format_findings(lint(sim))
    assert "[unbound-port] dut.in" in text
    assert "1 finding(s): 1× unbound-port" in text
