"""Hierarchy construction, naming, dedup, and compatibility behaviour."""

import pytest

from repro.connections import Buffer, In, Out, Pipeline
from repro.design import component_scope, current_scope, design_path, elaborate
from repro.kernel import BusSignal, Simulator


def _sim_clk():
    sim = Simulator()
    return sim, sim.add_clock("clk", period=10)


# ----------------------------------------------------------------------
# scoped construction
# ----------------------------------------------------------------------

def test_nested_scopes_produce_dotted_paths():
    sim, clk = _sim_clk()
    with component_scope(sim, "chip", kind="Chip") as chip:
        with component_scope(sim, "pe0", kind="PE", clock=clk) as pe:
            chan = Buffer(sim, clk, capacity=2, name="weight_buf")
    assert chip.path == "chip"
    assert pe.path == "chip.pe0"
    assert chan.path == "chip.pe0.weight_buf"
    assert "chip.pe0.weight_buf" in repr(chan)


def test_component_scope_sets_design_instance_on_obj():
    sim, _ = _sim_clk()

    class Widget:
        pass

    w = Widget()
    with component_scope(sim, "w", kind="Widget", obj=w) as inst:
        pass
    assert w._design_instance is inst
    assert design_path(w) == "w"


def test_current_scope_is_none_outside_any_scope():
    assert current_scope() is None


def test_ports_register_into_active_scope():
    sim, clk = _sim_clk()
    chan = Buffer(sim, clk, capacity=2, name="c")
    with component_scope(sim, "dut", kind="DUT", clock=clk) as inst:
        In(chan, name="in")
        Out(chan, name="out")
    assert [p.name for p in inst.ports] == ["in", "out"]
    assert {p.path for p in inst.ports} == {"dut.in", "dut.out"}


def test_threads_renamed_to_full_path_inside_scopes():
    sim, clk = _sim_clk()

    def body():
        yield

    with component_scope(sim, "dut", kind="DUT", clock=clk):
        sim.add_thread(body(), clk, name="ctl")
    names = [t.name for t in sim._threads]
    assert "dut.ctl" in names


def test_root_threads_keep_bare_names():
    sim, clk = _sim_clk()

    def body():
        yield

    sim.add_thread(body(), clk, name="p")
    assert [t.name for t in sim._threads] == ["p"]


def test_signal_paths_follow_scope():
    sim, clk = _sim_clk()
    with component_scope(sim, "unit", kind="U", clock=clk):
        sig = BusSignal(sim, width=8, name="count")
    loose = BusSignal(sim, width=8, name="loose")
    assert sig.path == "unit.count"
    assert loose.path == "loose"


# ----------------------------------------------------------------------
# name deduplication
# ----------------------------------------------------------------------

def test_default_channel_names_dedup_silently():
    sim, clk = _sim_clk()
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        chans = [Buffer(sim, clk, capacity=2) for _ in range(3)]
    assert [c.name for c in chans] == ["buf", "buf_1", "buf_2"]
    assert sim.design.collisions == []


def test_default_names_reflect_channel_kind():
    sim, clk = _sim_clk()
    assert Buffer(sim, clk, capacity=2).name == "buf"
    assert Pipeline(sim, clk).name == "pipe"


def test_explicit_name_collision_dedups_and_records():
    sim, clk = _sim_clk()
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        a = Buffer(sim, clk, capacity=2, name="q")
        b = Buffer(sim, clk, capacity=2, name="q")
    assert a.name == "q" and b.name == "q_1"
    assert a.path == "dut.q" and b.path == "dut.q_1"
    [(scope, requested, assigned, category)] = sim.design.collisions
    assert (scope, requested, assigned) == ("dut", "q", "q_1")
    assert category == "channel"


def test_same_name_in_different_scopes_is_not_a_collision():
    sim, clk = _sim_clk()
    with component_scope(sim, "a", kind="A", clock=clk):
        ca = Buffer(sim, clk, capacity=2, name="q")
    with component_scope(sim, "b", kind="B", clock=clk):
        cb = Buffer(sim, clk, capacity=2, name="q")
    assert ca.path == "a.q" and cb.path == "b.q"
    assert sim.design.collisions == []


def test_instance_name_collision_dedups():
    sim, clk = _sim_clk()
    with component_scope(sim, "dup", kind="X") as first:
        pass
    with component_scope(sim, "dup", kind="X") as second:
        pass
    assert first.name == "dup" and second.name == "dup_1"


# ----------------------------------------------------------------------
# pre-refactor constructor compatibility
# ----------------------------------------------------------------------

def test_unscoped_channel_registers_at_root_with_bare_name():
    sim, clk = _sim_clk()
    chan = Buffer(sim, clk, capacity=4, name="demo")
    assert chan.name == "demo"
    assert chan.path == "demo"
    graph = elaborate(sim)
    assert graph.channel("demo").kind == "Buffer"


def test_channel_on_design_less_simulator_still_works():
    class BareSim:
        """A test double without the .design attribute."""

        def __init__(self):
            self.telemetry = None

    class BareClock:
        def on_edge(self, cb):
            pass

    chan = Buffer(BareSim(), BareClock(), capacity=2, name="x")
    assert chan.name == "x"
    assert chan.path == "x"


def test_elaborate_accepts_simulator_or_hierarchy():
    sim, clk = _sim_clk()
    Buffer(sim, clk, capacity=2, name="c")
    by_sim = elaborate(sim)
    by_hier = elaborate(sim.design)
    assert [r.path for r in by_sim.channels] == \
        [r.path for r in by_hier.channels]
