"""Elaboration: graph contents, queries, and the tree renderer."""

import pytest

from repro.connections import Buffer, In, Out
from repro.design import component_scope, elaborate
from repro.kernel import Simulator


def _testbench():
    """dut(in->out) between a root driver and a root sink."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    up = Buffer(sim, clk, capacity=2, name="up")
    down = Buffer(sim, clk, capacity=4, name="down")
    with component_scope(sim, "dut", kind="DUT", clock=clk):
        In(up, name="in")
        Out(down, name="out")

        def body():
            yield

        sim.add_thread(body(), clk, name="ctl")
    Out(up, name="drive")
    In(down, name="sink")
    return sim


def test_graph_counts_and_stats():
    graph = elaborate(_testbench())
    stats = graph.stats()
    assert stats["instances"] == 2  # root + dut
    assert stats["channels"] == 2
    assert stats["ports"] == 4
    assert stats["ports_bound"] == 4
    assert stats["threads"] == 1
    assert stats["clocks"] == 1
    assert stats["crossings"] == 0


def test_channel_query_resolves_endpoints():
    graph = elaborate(_testbench())
    up = graph.channel("up")
    assert up.capacity == 2
    assert [p.path for p in up.producers] == ["drive"]
    assert [p.path for p in up.consumers] == ["dut.in"]
    down = graph.channel("down")
    assert [p.path for p in down.producers] == ["dut.out"]
    with pytest.raises(KeyError):
        graph.channel("nope")


def test_instance_query_by_path():
    graph = elaborate(_testbench())
    dut = graph.instance("dut")
    assert dut.kind == "DUT"
    with pytest.raises(KeyError):
        graph.instance("ghost")


def test_instance_edges_follow_dataflow():
    graph = elaborate(_testbench())
    edges = {(src.path, dst.path) for src, dst, _ in graph.instance_edges()}
    assert edges == {("", "dut"), ("dut", "")}


def test_tree_renders_instances_and_channels():
    text = elaborate(_testbench()).tree()
    assert "dut  (DUT) @clk [2p/1t]" in text
    assert "up  <Buffer/2> @clk" in text
    assert "2 instances, 2 channels, 4/4 ports bound" in text


def test_tree_max_depth_truncates():
    text = elaborate(_testbench()).tree(max_depth=0)
    assert "more" in text and "DUT" not in text


def test_tree_channels_off():
    text = elaborate(_testbench()).tree(channels=False)
    assert "Buffer" not in text


def test_crossings_detects_multi_domain_channels():
    sim = Simulator()
    a = sim.add_clock("a", period=10)
    b = sim.add_clock("b", period=13)
    chan = Buffer(sim, a, capacity=2, name="x")
    with component_scope(sim, "rx", kind="RX", clock=b):
        In(chan, name="in")
    graph = elaborate(sim)
    assert [rec.path for rec in graph.crossings()] == ["x"]
