"""Differential oracle for the graph-compiled backend.

The contract (see ``docs/COMPILED_BACKEND.md``) is that
``backend="compiled"`` is *observably identical* to the threaded
reference kernel: every cycle count, every statistic, every telemetry
counter — only wall-clock time may differ.  These tests enforce that
contract across all nine registered experiment verbs, plus the
fallback paths (capability rejection, instrumentation attach) and the
sweep-cache identity rules.

Experiments here run at reduced sizes so the whole file stays in
tier-1 time budgets; the byte-identity argument does not depend on
size (the resume-order proof in ``repro/compile/engine.py`` is
per-cycle, not per-workload).
"""

from __future__ import annotations

import pytest

from repro.kernel.backend import last_run, use_backend
from repro.sweep.serialize import NONDETERMINISTIC_FIELDS, to_jsonable


def _run_both(fn):
    """Run ``fn`` under both backends; return comparable payloads."""
    with use_backend("threaded"):
        threaded = fn()
    with use_backend("compiled"):
        compiled = fn()
    return (to_jsonable(threaded, exclude=NONDETERMINISTIC_FIELDS),
            to_jsonable(compiled, exclude=NONDETERMINISTIC_FIELDS))


def _assert_identical(fn):
    threaded, compiled = _run_both(fn)
    assert threaded == compiled


# ----------------------------------------------------------------------
# one differential test per CLI verb (python -m repro <verb>)
# ----------------------------------------------------------------------
def test_fig3_identical():
    from repro.experiments import figure3

    _assert_identical(lambda: figure3(ports=(2, 4), txns_per_port=15,
                                      seed=1))


def test_fig6_identical():
    from repro.experiments import figure6
    from repro.workloads.soc_workloads import (
        memcpy_workload,
        vector_scale_workload,
    )

    workloads = [vector_scale_workload(n_pes=2, n_per_pe=8),
                 memcpy_workload(n_pes=2, n_per_pe=8)]
    _assert_identical(lambda: figure6(workloads=workloads))


def test_pe_scaling_identical_and_compiled_engages():
    """The flagship sweep: must be identical AND actually compiled."""
    from repro.experiments.fig6_soc import run_pe_scaling_point

    def run():
        return [run_pe_scaling_point(
            {"n_pes": n, "n_per_pe": 64, "mode": "fast"}, 0)
            for n in (1, 2, 4)]

    threaded, compiled = _run_both(run)
    assert threaded == compiled
    # The provenance record proves the compiled engine really ran —
    # a silent fallback would make the comparison vacuous.
    assert last_run() == ("compiled", None)


def test_crossbar_qor_identical():
    from repro.experiments import crossbar_clock_sweep, crossbar_qor_sweep

    _assert_identical(lambda: {"lane_sweep": crossbar_qor_sweep(),
                               "clock_sweep": crossbar_clock_sweep()})


def test_hls_qor_identical():
    from repro.experiments import bad_constraint_ablation, hls_vs_hand_qor

    _assert_identical(lambda: {"hls_vs_hand": hls_vs_hand_qor(),
                               "bad_constraints": bad_constraint_ablation()})


def test_gals_identical():
    from repro.experiments import partition_size_sweep, testchip_overhead

    _assert_identical(lambda: {"partition_sweep": partition_size_sweep(),
                               "testchip": testchip_overhead()})


def test_adaptive_clocking_identical():
    from repro.experiments import adaptive_clocking_experiment

    _assert_identical(adaptive_clocking_experiment)


def test_stalls_identical():
    from repro.experiments import stall_campaign

    _assert_identical(lambda: stall_campaign(0.3, trials=3, base_seed=7))


def test_backend_turnaround_identical():
    from repro.flow import (
        FlowRuntimeModel,
        inventory_partitions,
        testchip_inventory,
    )

    def run():
        model = FlowRuntimeModel()
        parts = inventory_partitions(testchip_inventory())
        return {"gals": model.turnaround(parts, gals=True),
                "synchronous": model.turnaround(parts, gals=False),
                "flat_hours": model.flat_hours(parts)}

    _assert_identical(run)


def test_productivity_identical():
    from repro.flow import (
        OOHLS_METHODOLOGY,
        RTL_METHODOLOGY,
        inventory_efforts,
        productivity_report,
        testchip_inventory,
    )

    def run():
        efforts = inventory_efforts(testchip_inventory())
        return {"oohls": productivity_report(efforts, OOHLS_METHODOLOGY),
                "rtl": productivity_report(efforts, RTL_METHODOLOGY)}

    _assert_identical(run)


# ----------------------------------------------------------------------
# fallback paths: ineligible designs and instrumentation
# ----------------------------------------------------------------------
def test_capability_rejection_falls_back_with_reason():
    """A design outside the capability proof runs threaded, recorded."""
    from repro.experiments import figure3

    with use_backend("threaded"):
        reference = figure3(ports=(2,), txns_per_port=10, seed=1)
    with use_backend("compiled"):
        result = figure3(ports=(2,), txns_per_port=10, seed=1)
    backend, reason = last_run()
    assert backend == "threaded"
    assert reason is not None  # the *why* is part of the contract
    assert (to_jsonable(result, exclude=NONDETERMINISTIC_FIELDS)
            == to_jsonable(reference, exclude=NONDETERMINISTIC_FIELDS))


def test_telemetry_attach_falls_back_and_matches():
    """A telemetry hub needs the instrumented delta loop: compiled
    detaches, results (including telemetry counters) stay identical."""
    from repro import observe
    from repro.experiments.fig6_soc import run_pe_scaling_point

    params = {"n_pes": 2, "n_per_pe": 32, "mode": "fast"}

    with use_backend("threaded"), observe.capture() as ref_session:
        reference = run_pe_scaling_point(dict(params), 0)
    ref_records = observe.to_records(ref_session.report(label="pt"))

    with use_backend("compiled"), observe.capture() as session:
        result = run_pe_scaling_point(dict(params), 0)
    records = observe.to_records(session.report(label="pt"))

    backend, reason = last_run()
    assert backend == "threaded"
    assert reason is not None and "telemetry" in reason
    assert result == reference
    assert (to_jsonable(records, exclude=NONDETERMINISTIC_FIELDS)
            == to_jsonable(ref_records, exclude=NONDETERMINISTIC_FIELDS))


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        with use_backend("jit"):
            pass  # pragma: no cover - use_backend raises before the body


# ----------------------------------------------------------------------
# sweep integration: cache identity and end-to-end point execution
# ----------------------------------------------------------------------
def test_sweep_point_default_backend_keeps_cache_keys():
    """Points predating the backend field must stay cache-addressable."""
    from repro.sweep.point import SweepPoint

    point = SweepPoint("pe_scaling", {"n_pes": 2}, seed=3)
    assert point.backend == "threaded"
    assert "backend" not in point.identity()


def test_sweep_point_compiled_backend_enters_cache_key():
    from repro.sweep.point import SweepPoint

    threaded = SweepPoint("pe_scaling", {"n_pes": 2}, seed=3)
    compiled = SweepPoint("pe_scaling", {"n_pes": 2}, seed=3,
                          backend="compiled")
    assert compiled.identity()["backend"] == "compiled"
    assert threaded.canonical() != compiled.canonical()


def test_sweep_executes_compiled_points_identically():
    from repro.sweep.engine import _execute_point
    from repro.sweep.point import SweepPoint

    params = {"n_pes": 2, "n_per_pe": 32, "mode": "fast"}
    threaded = _execute_point(
        0, SweepPoint("pe_scaling", params, seed=0), telemetry=False)
    compiled = _execute_point(
        0, SweepPoint("pe_scaling", params, seed=0, backend="compiled"),
        telemetry=False)
    assert threaded["result"] == compiled["result"]
    assert last_run() == ("compiled", None)
