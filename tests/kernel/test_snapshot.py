"""Snapshot/restore determinism: the construct-once, run-many primitive.

Warm batched sweeps (``repro.sweep.warm``) rest on one kernel promise:
``restore`` rewinds a simulator to a byte-identical earlier state, so
re-running from a snapshot reproduces the original run exactly.  These
tests pin that promise property-style across stall randomness, restore
points, and both backends, plus the supported mutation contract
(post-snapshot knob changes are discarded) and every eligibility error.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.verify.profiles import property_settings

from repro.connections import Buffer, In, Out
from repro.faults import FaultPlan
from repro.kernel import SimulationError, Simulator, SnapshotError

N_MSGS = 16


def _build(stall_probability=0.0, stall_seed=7, *, backend=None,
           capacity=2, period=10):
    """Producer -> forwarder -> consumer over two Buffers.

    All threads are factory-registered, so the design is
    snapshot-eligible; ``received`` is rewound through an on_restore
    hook exactly as an experiment-owned accumulator would be.
    """
    sim = Simulator(backend=backend)
    clk = sim.add_clock("clk", period=period)
    up = Buffer(sim, clk, capacity=capacity, name="up")
    down = Buffer(sim, clk, capacity=capacity, name="down")
    if stall_probability > 0.0:
        down.set_stall(stall_probability, seed=stall_seed)
    src, fwd_in = Out(up, name="src"), In(up, name="fwd_in")
    fwd_out, sink = Out(down, name="fwd_out"), In(down, name="sink")
    received = []

    def producer():
        for i in range(N_MSGS):
            yield from src.push(i * 3 + 1)

    def forwarder():
        for _ in range(N_MSGS):
            msg = yield from fwd_in.pop()
            yield from fwd_out.push(msg)

    def consumer():
        for _ in range(N_MSGS):
            received.append(((yield from sink.pop()), sim.now))

    sim.add_thread(producer, clk, name="producer")
    sim.add_thread(forwarder, clk, name="forwarder")
    sim.add_thread(consumer, clk, name="consumer")
    sim.on_restore(received.clear)
    return sim, clk, received


def _observe(sim, clk, received):
    return (sim.now, clk.cycles, sim.pending_threads, tuple(received))


HORIZON = N_MSGS * 200


# ----------------------------------------------------------------------
# the core property: restore + rerun == original run
# ----------------------------------------------------------------------
@property_settings()
@given(stall=st.sampled_from((0.0, 0.2, 0.5)),
       seed=st.integers(0, 10_000),
       cut=st.integers(1, HORIZON - 1))
def test_restore_rerun_identical_threaded(stall, seed, cut):
    sim, clk, received = _build(stall, seed)
    sim.enable_snapshots()
    snap0 = sim.snapshot()
    sim.run(until=cut)
    snap_mid = sim.snapshot()
    sim.run(until=HORIZON)
    full = _observe(sim, clk, received)
    assert len(received) == N_MSGS

    # Rewind to the mid-run snapshot: the replayed prefix plus the
    # re-executed suffix must land on the identical final state.
    sim.restore(snap_mid)
    assert sim.now == cut
    sim.run(until=HORIZON)
    assert _observe(sim, clk, received) == full

    # Rewind all the way to construction and re-run start to finish.
    sim.restore(snap0)
    assert (sim.now, clk.cycles, received) == (0, 0, [])
    sim.run(until=cut)
    sim.run(until=HORIZON)
    assert _observe(sim, clk, received) == full


def test_restore_matches_fresh_construction():
    fresh_sim, fresh_clk, fresh_rx = _build(0.3, 42)
    fresh_sim.run(until=HORIZON)

    sim, clk, received = _build(0.3, 42)
    sim.enable_snapshots()
    snap = sim.snapshot()
    sim.run(until=HORIZON)
    assert _observe(sim, clk, received) == _observe(
        fresh_sim, fresh_clk, fresh_rx)
    sim.restore(snap)
    sim.run(until=HORIZON)
    assert _observe(sim, clk, received) == _observe(
        fresh_sim, fresh_clk, fresh_rx)


def test_repeated_restore_cycles_stay_identical():
    sim, clk, received = _build(0.4, 9)
    sim.enable_snapshots()
    snap = sim.snapshot()
    runs = []
    for _ in range(4):
        sim.run(until=HORIZON)
        runs.append(_observe(sim, clk, received))
        sim.restore(snap)
    assert len(set(runs)) == 1


# ----------------------------------------------------------------------
# compiled backend
# ----------------------------------------------------------------------
@property_settings()
@given(stall=st.sampled_from((0.0, 0.35)),
       seed=st.integers(0, 1_000),
       cut=st.integers(1, HORIZON - 1))
def test_restore_rerun_identical_compiled(stall, seed, cut):
    sim, clk, received = _build(stall, seed, backend="compiled")
    sim.enable_snapshots()
    snap0 = sim.snapshot()
    sim.run(until=cut)
    snap_mid = sim.snapshot()
    sim.run(until=HORIZON)
    assert sim.backend == "compiled", sim.backend_fallback_reason
    full = _observe(sim, clk, received)

    sim.restore(snap_mid)
    sim.run(until=HORIZON)
    assert sim.backend == "compiled"
    assert _observe(sim, clk, received) == full

    sim.restore(snap0)
    sim.run(until=HORIZON)
    assert _observe(sim, clk, received) == full

    # And the compiled run agrees with a threaded one bit-for-bit.
    tsim, tclk, trx = _build(stall, seed)
    tsim.run(until=HORIZON)
    assert _observe(tsim, tclk, trx) == full


# ----------------------------------------------------------------------
# mid-run restore after a fault-plan run
# ----------------------------------------------------------------------
def test_restore_after_fault_plan_run():
    def build():
        sim, clk, received = _build(0.25, 11)
        plan = (FaultPlan(seed=5)
                .drop("down", probability=0.15)
                .duplicate("up", probability=0.1))
        plan.apply(sim)
        return sim, clk, received

    fresh_sim, fresh_clk, fresh_rx = build()
    fresh_sim.run(until=HORIZON)
    reference = _observe(fresh_sim, fresh_clk, fresh_rx)
    # Drops mean fewer (or duplicated) deliveries; the run must still
    # have done *something* interesting for the rewind to be a real test.
    assert fresh_rx

    sim, clk, received = build()
    sim.enable_snapshots()
    sim.run(until=HORIZON // 3)
    snap_mid = sim.snapshot()
    sim.run(until=HORIZON)
    assert _observe(sim, clk, received) == reference

    # The fault RNGs (drop/duplicate hooks) rewind with the channel
    # state, so the replayed prefix + rerun suffix reproduce the same
    # fault pattern.
    sim.restore(snap_mid)
    assert sim.now == HORIZON // 3
    sim.run(until=HORIZON)
    assert _observe(sim, clk, received) == reference


# ----------------------------------------------------------------------
# the mutation contract: post-snapshot knob changes are discarded
# ----------------------------------------------------------------------
def test_post_snapshot_mutations_discarded():
    sim, clk, received = _build(0.0, 0)
    down = next(chan for inst in sim.design.root.walk()
                for chan in inst.channels if chan.path == "down")
    sim.enable_snapshots()
    snap = sim.snapshot()
    baseline = None
    for trial in range(2):
        # Warm-sweep shape: mutate knobs after the snapshot, run, then
        # restore — the mutations must vanish with the restore.
        down.set_stall(0.6, seed=123 + trial)
        down.capacity = 7
        clk.period = 4
        sim.run(until=HORIZON)
        sim.restore(snap)
        assert (sim.now, received, clk.period) == (0, [], 10)
        assert down.capacity == 2
        # A plain post-restore run behaves like the unmutated base.
        sim.run(until=HORIZON)
        state = _observe(sim, clk, received)
        if baseline is None:
            baseline = state
        assert state == baseline
        sim.restore(snap)

    unmutated_sim, unmutated_clk, unmutated_rx = _build(0.0, 0)
    unmutated_sim.run(until=HORIZON)
    assert baseline == _observe(unmutated_sim, unmutated_clk, unmutated_rx)


# ----------------------------------------------------------------------
# eligibility and error cases
# ----------------------------------------------------------------------
def test_raw_generator_thread_rejected():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)

    def body():
        while True:
            yield

    sim.add_thread(body(), clk, name="raw")
    with pytest.raises(SnapshotError, match="raw\\s+generator"):
        sim.enable_snapshots()


def test_enable_after_first_run_rejected():
    sim, _, _ = _build()
    sim.run(until=50)
    with pytest.raises(SnapshotError, match="before the first run"):
        sim.enable_snapshots()


def test_restore_without_enable_rejected():
    sim, _, _ = _build()
    other, _, _ = _build()
    other.enable_snapshots()
    snap = other.snapshot()
    with pytest.raises(SnapshotError, match="never called"):
        sim.restore(snap)


def test_telemetry_blocks_snapshots():
    sim = Simulator(telemetry=True)
    sim.add_clock("clk", period=10)
    with pytest.raises(SnapshotError, match="telemetry"):
        sim.enable_snapshots()


def test_snapshot_error_is_a_simulation_error():
    assert issubclass(SnapshotError, SimulationError)
