"""Tests for waveform tracing utilities (Figure 1's debug-trace path)."""

import io
import time

from repro.connections import BufferSignal, stream_consumer, stream_producer
from repro.kernel import BusSignal, Simulator, Trace, WallClock, write_vcd


def test_trace_of_a_real_handshake():
    """Trace the valid/ready wires of a signal channel end to end."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = BufferSignal(sim, clk, name="ch", capacity=2)
    sim.trace = Trace([chan.enq.valid, chan.enq.ready, chan.deq.valid])
    sink = []
    sim.add_thread(stream_producer(chan.enq, [1, 2, 3]), clk, name="p")
    sim.add_thread(stream_consumer(chan.deq, sink, count=3), clk, name="c")
    sim.run(until=2000)
    assert sink == [1, 2, 3]
    names = {name for _, name, _ in sim.trace.changes}
    assert "ch.enq.valid" in names and "ch.deq.valid" in names
    # Valid toggled on and back off as the stream completed.
    valid_changes = [v for _, n, v in sim.trace.changes if n == "ch.enq.valid"]
    assert 1 in valid_changes and valid_changes[-1] == 0


def test_vcd_export_of_traced_run():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    sig = BusSignal(sim, width=4, name="count")
    sim.trace = Trace([sig])

    def counter():
        for i in range(5):
            sig.write(i)
            yield

    sim.add_thread(counter(), clk, name="cnt")
    sim.run(until=100)
    out = io.StringIO()
    write_vcd(sim.trace, out)
    text = out.getvalue()
    assert "$timescale 1ps $end" in text
    assert "$var wire 4" in text
    assert text.count("#") >= 4  # several timestamps


def test_trace_values_at_reconstructs_state():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    sig = BusSignal(sim, width=8, name="s")
    sim.trace = Trace([sig])

    def driver():
        sig.write(5)
        yield 2
        sig.write(9)
        yield

    sim.add_thread(driver(), clk, name="d")
    sim.run(until=200)
    # The write at the t=0 edge commits within timestep 0.
    assert sim.trace.values_at(0)["s"] == 5
    assert sim.trace.values_at(15)["s"] == 5
    assert sim.trace.values_at(100)["s"] == 9


def test_wall_clock_context_manager():
    with WallClock() as wc:
        time.sleep(0.01)
    assert wc.elapsed >= 0.005
