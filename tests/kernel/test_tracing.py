"""Tests for waveform tracing utilities (Figure 1's debug-trace path)."""

import io
import time

from repro.connections import BufferSignal, stream_consumer, stream_producer
from repro.kernel import (
    BusSignal,
    Signal,
    Simulator,
    Trace,
    WallClock,
    write_vcd,
)


def test_trace_of_a_real_handshake():
    """Trace the valid/ready wires of a signal channel end to end."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = BufferSignal(sim, clk, name="ch", capacity=2)
    sim.trace = Trace([chan.enq.valid, chan.enq.ready, chan.deq.valid])
    sink = []
    sim.add_thread(stream_producer(chan.enq, [1, 2, 3]), clk, name="p")
    sim.add_thread(stream_consumer(chan.deq, sink, count=3), clk, name="c")
    sim.run(until=2000)
    assert sink == [1, 2, 3]
    names = {name for _, name, _ in sim.trace.changes}
    assert "ch.enq.valid" in names and "ch.deq.valid" in names
    # Valid toggled on and back off as the stream completed.
    valid_changes = [v for _, n, v in sim.trace.changes if n == "ch.enq.valid"]
    assert 1 in valid_changes and valid_changes[-1] == 0


def test_vcd_export_of_traced_run():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    sig = BusSignal(sim, width=4, name="count")
    sim.trace = Trace([sig])

    def counter():
        for i in range(5):
            sig.write(i)
            yield

    sim.add_thread(counter(), clk, name="cnt")
    sim.run(until=100)
    out = io.StringIO()
    write_vcd(sim.trace, out)
    text = out.getvalue()
    assert "$timescale 1ps $end" in text
    assert "$var wire 4" in text
    assert text.count("#") >= 4  # several timestamps


def test_trace_values_at_reconstructs_state():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    sig = BusSignal(sim, width=8, name="s")
    sim.trace = Trace([sig])

    def driver():
        sig.write(5)
        yield 2
        sig.write(9)
        yield

    sim.add_thread(driver(), clk, name="d")
    sim.run(until=200)
    # The write at the t=0 edge commits within timestep 0.
    assert sim.trace.values_at(0)["s"] == 5
    assert sim.trace.values_at(15)["s"] == 5
    assert sim.trace.values_at(100)["s"] == 9


def test_wall_clock_context_manager():
    with WallClock() as wc:
        time.sleep(0.01)
    assert wc.elapsed >= 0.005


def test_values_at_with_out_of_order_changes():
    """values_at must sort by time: records may arrive out of order."""
    sim = Simulator()
    sig = BusSignal(sim, width=8, name="s")
    trace = Trace([sig])
    # Simulate out-of-time-order recording (e.g. a signal watched
    # mid-run seeds at t=0 after later changes were already recorded).
    trace.changes.append((50, "s", 7))
    trace.changes.append((10, "s", 3))
    trace.changes.append((30, "s", 5))
    assert trace.values_at(5)["s"] == 0    # the seed value
    assert trace.values_at(10)["s"] == 3
    assert trace.values_at(40)["s"] == 5
    assert trace.values_at(99)["s"] == 7


def test_values_at_same_time_last_write_wins():
    sim = Simulator()
    sig = BusSignal(sim, width=8, name="s")
    trace = Trace([sig])
    trace.changes.append((10, "s", 1))
    trace.changes.append((10, "s", 2))
    assert trace.values_at(10)["s"] == 2


def test_vcd_masks_negative_ints_to_declared_width():
    sim = Simulator()
    sig = BusSignal(sim, width=4, name="neg")
    trace = Trace([sig])
    trace.changes.append((10, "neg", -1))
    trace.changes.append((20, "neg", -3))
    out = io.StringIO()
    write_vcd(trace, out)
    text = out.getvalue()
    assert "b1111 !" in text   # -1 masked to 4 bits
    assert "b1101 !" in text   # -3 masked to 4 bits
    # No unmasked (arbitrarily wide) two's complement leaked through.
    assert "b" + "1" * 32 not in text


def test_vcd_string_values_with_spaces_are_legal():
    """Regression: spaces inside string values must be replaced, or the
    value token ends early and the VCD is malformed."""
    sim = Simulator()
    sig = Signal(sim, init="idle", name="state")
    trace = Trace([sig])
    trace.changes.append((10, "state", "wait for grant"))
    out = io.StringIO()
    write_vcd(trace, out)
    body = out.getvalue().split("$enddefinitions $end\n", 1)[1]
    for line in body.splitlines():
        if line.startswith("s"):
            # Exactly one separator: value token, identifier.
            assert line.count(" ") == 1, line
    assert "swait_for_grant !" in body


def test_trace_autowatch_records_signals_created_later():
    sim = Simulator()
    sim.trace = Trace(autowatch=True)
    clk = sim.add_clock("clk", period=10)
    sig = BusSignal(sim, width=8, name="auto")  # created after the trace

    def driver():
        for i in range(4):
            sig.write(i + 1)
            yield

    sim.add_thread(driver(), clk, name="d")
    sim.run(until=200)
    assert sig in sim.trace.signals
    values = [v for _, n, v in sim.trace.changes if n == "auto"]
    assert values[-1] == 4


def test_trace_watch_is_idempotent():
    sim = Simulator()
    sig = BusSignal(sim, width=8, name="s")
    trace = Trace([sig])
    trace.watch(sig)
    assert trace.signals.count(sig) == 1
