"""Tests for signal evaluate/update semantics and combinational methods."""

import io

import pytest

from repro.kernel import (
    BitSignal,
    BusSignal,
    DeltaOverflow,
    Signal,
    Simulator,
    Trace,
    write_vcd,
)


def test_signal_write_not_visible_within_same_delta():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    sig = Signal(sim, init=0, name="s")
    observed = []

    def body():
        sig.write(42)
        observed.append(sig.read())  # still old value in same delta
        yield
        observed.append(sig.read())  # committed after the delta

    sim.add_thread(body(), clk, name="t")
    sim.run(until=50)
    assert observed == [0, 42]


def test_two_threads_swap_through_signals_race_free():
    """The classic race: both threads read old values, swap is clean."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    a = Signal(sim, init=1, name="a")
    b = Signal(sim, init=2, name="b")

    def swap_a():
        a.write(b.read())
        yield

    def swap_b():
        b.write(a.read())
        yield

    sim.add_thread(swap_a(), clk, name="ta")
    sim.add_thread(swap_b(), clk, name="tb")
    sim.run(until=20)
    assert (a.read(), b.read()) == (2, 1)


def test_method_runs_on_sensitivity_change():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    a = Signal(sim, init=0, name="a")
    out = Signal(sim, init=0, name="out")

    sim.add_method(lambda: out.write(a.read() + 1), sensitive=[a], name="inc")

    def driver():
        for v in (5, 7, 9):
            a.write(v)
            yield

    sim.add_thread(driver(), clk, name="drv")
    sim.run(until=100)
    assert out.read() == 10


def test_method_chain_settles_in_one_timestep():
    """comb chain a -> b -> c resolves through cascaded deltas."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    a = Signal(sim, init=0, name="a")
    b = Signal(sim, init=0, name="b")
    c = Signal(sim, init=0, name="c")

    sim.add_method(lambda: b.write(a.read() * 2), sensitive=[a], name="m1")
    sim.add_method(lambda: c.write(b.read() + 1), sensitive=[b], name="m2")

    def driver():
        a.write(10)
        yield
        yield

    sim.add_thread(driver(), clk, name="drv")
    sim.run(until=30)
    assert c.read() == 21


def test_unstable_combinational_loop_detected():
    sim = Simulator()
    a = Signal(sim, init=0, name="a")
    # a = a + 1 never settles.
    sim.add_method(lambda: a.write(a.read() + 1), sensitive=[a], name="osc")
    with pytest.raises(DeltaOverflow):
        sim.run(until=10)


def test_bit_signal_coerces_to_01():
    sim = Simulator()
    bit = BitSignal(sim, name="b")
    bit.write(17)
    sim.run(until=0)
    assert bit.read() == 1


def test_bus_signal_masks_to_width():
    sim = Simulator()
    bus = BusSignal(sim, width=8, name="bus")
    bus.write(0x1FF)
    sim.run(until=0)
    assert bus.read() == 0xFF


def test_bus_signal_zero_width_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        BusSignal(sim, width=0)


def test_redundant_write_does_not_wake_methods():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    a = Signal(sim, init=0, name="a")
    runs = []

    sim.add_method(lambda: runs.append(sim.now), sensitive=[a], name="m")

    def driver():
        a.write(0)  # no change
        yield
        a.write(3)  # change
        yield

    sim.add_thread(driver(), clk, name="drv")
    sim.run(until=50)
    # One elaboration run at t=0 plus exactly one change-triggered run.
    assert len(runs) == 2


def test_trace_records_changes_and_vcd_roundtrip():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    a = BusSignal(sim, width=8, name="a")
    sim.trace = Trace([a])

    def driver():
        for v in (1, 2, 3):
            a.write(v)
            yield

    sim.add_thread(driver(), clk, name="drv")
    sim.run(until=100)
    assert [v for _, name, v in sim.trace.changes if name == "a"] == [0, 1, 2, 3]
    assert sim.trace.values_at(15)["a"] == 2

    out = io.StringIO()
    write_vcd(sim.trace, out)
    text = out.getvalue()
    assert "$var wire 8" in text
    assert "#10" in text
