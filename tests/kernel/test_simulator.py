"""Unit tests for the simulation kernel scheduler."""

import pytest

from repro.kernel import Event, SimulationError, Simulator


def test_empty_simulation_runs_to_completion():
    sim = Simulator()
    assert sim.run() == 0


def test_clock_ticks_at_period():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    sim.run(until=100)
    # Edges at t=0,10,...,100 inclusive.
    assert clk.cycles == 11


def test_clock_start_offset():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10, start=5)
    sim.run(until=100)
    # Edges at t=5,15,...,95.
    assert clk.cycles == 10


def test_thread_runs_once_per_cycle():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    ticks = []

    def body():
        while True:
            ticks.append(sim.now)
            yield

    sim.add_thread(body(), clk, name="t")
    sim.run(until=50)
    assert ticks == [0, 10, 20, 30, 40, 50]


def test_thread_multi_cycle_wait():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    ticks = []

    def body():
        while True:
            ticks.append(sim.now)
            yield 3

    sim.add_thread(body(), clk, name="t")
    sim.run(until=100)
    assert ticks == [0, 30, 60, 90]


def test_thread_termination_counts():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)

    def body():
        yield
        yield

    sim.add_thread(body(), clk, name="t")
    assert sim.pending_threads == 1
    sim.run(until=100)
    assert sim.pending_threads == 0


def test_two_clock_domains_interleave():
    sim = Simulator()
    fast = sim.add_clock("fast", period=7)
    slow = sim.add_clock("slow", period=13)
    log = []

    def mk(tag):
        def body():
            while True:
                log.append((tag, sim.now))
                yield

        return body

    sim.add_thread(mk("f")(), fast, name="f")
    sim.add_thread(mk("s")(), slow, name="s")
    sim.run(until=40)
    fast_times = [t for tag, t in log if tag == "f"]
    slow_times = [t for tag, t in log if tag == "s"]
    assert fast_times == [0, 7, 14, 21, 28, 35]
    assert slow_times == [0, 13, 26, 39]


def test_event_notify_wakes_waiter_same_timestep():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    ev = sim.event("ev")
    woken_at = []

    def waiter():
        yield ev
        woken_at.append(sim.now)

    def notifier():
        yield 2  # wake at t=20
        ev.notify()

    sim.add_thread(waiter(), clk, name="w")
    sim.add_thread(notifier(), clk, name="n")
    sim.run(until=100)
    assert woken_at == [20]


def test_event_notify_at_delay():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    ev = sim.event("ev")
    woken_at = []

    def waiter():
        yield ev
        woken_at.append(sim.now)

    def notifier():
        yield  # now at t=10
        ev.notify_at(25)  # relative: fires at t=35

    sim.add_thread(waiter(), clk, name="w")
    sim.add_thread(notifier(), clk, name="n")
    sim.run(until=100)
    assert woken_at == [35]


def test_yield_nonpositive_wait_rejected():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)

    def body():
        yield 0

    sim.add_thread(body(), clk, name="bad")
    with pytest.raises(SimulationError):
        sim.run(until=50)


def test_yield_garbage_rejected():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)

    def body():
        yield "nope"

    sim.add_thread(body(), clk, name="bad")
    with pytest.raises(SimulationError):
        sim.run(until=50)


def test_run_cycles_advances_exactly():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    sim.run_cycles(clk, 5)
    assert clk.cycles == 5


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda: fired.append(True))
    sim.run(until=50)
    assert fired == []
    assert sim.now == 50


def test_subgenerator_composition_with_yield_from():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    log = []

    def helper(n):
        for _ in range(n):
            yield
        return sim.now

    def body():
        t = yield from helper(3)
        log.append(t)

    sim.add_thread(body(), clk, name="t")
    sim.run(until=100)
    assert log == [30]
