"""Tests for the scheduler hot path: fast-lane clocks, wakeup buckets,
idle-skip, signal-held sensitivity, and the bounded ``run_cycles``.

These pin down the semantics-preservation contract of the fast paths
(see ``docs/PERFORMANCE.md``): everything here must hold on the general
heap-scheduled path too.
"""

import gc

import pytest

from repro.kernel import Signal, Simulator


# ----------------------------------------------------------------------
# direct signal→method sensitivity (the id()-keyed dict is gone)
# ----------------------------------------------------------------------

def test_dropped_signals_cannot_alias_sensitivity():
    """Regression for the old ``Simulator._sensitivity`` id()-keyed dict.

    The dict held no reference to the signal, so a collected signal's
    reused ``id`` inherited the stale method list.  Watcher lists now
    live on the signal object itself; churning signals through creation
    and collection must leave fresh signals with only their own methods.
    """
    sim = Simulator()
    stale_calls = []
    for i in range(50):
        tmp = Signal(sim, 0, name=f"tmp{i}")
        sim.add_method(lambda i=i: stale_calls.append(i), [tmp],
                       name=f"stale{i}")
        del tmp
        gc.collect()
    hits = []
    fresh = Signal(sim, 0, name="fresh")
    sim.add_method(lambda: hits.append(fresh.read()), [fresh], name="m")
    sim.run()  # settle: every method runs once at elaboration
    stale_calls.clear()
    hits.clear()
    fresh.write(7)
    sim.run(until=sim.now + 10)
    assert hits == [7]
    assert stale_calls == []


def test_watcher_list_is_per_signal():
    sim = Simulator()
    a = Signal(sim, 0, name="a")
    b = Signal(sim, 0, name="b")
    runs = []
    sim.add_method(lambda: runs.append("a"), [a], name="ma")
    sim.add_method(lambda: runs.append("b"), [b], name="mb")
    sim.run()
    runs.clear()
    a.write(1)
    sim.run(until=sim.now + 10)
    assert runs == ["a"]


# ----------------------------------------------------------------------
# run_cycles: single bounded run with an edge-count stop condition
# ----------------------------------------------------------------------

def test_run_cycles_on_stopped_clock_terminates():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    clk.stop()
    sim.run_cycles(clk, 5)
    assert clk.cycles == 0


def test_run_cycles_when_clock_stops_midway():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)

    def stopper():
        yield 3
        clk.stop()

    sim.add_thread(stopper(), clk, name="s")
    sim.run_cycles(clk, 10)
    # First resume at cycle 1, then 3 more edges; the run terminates
    # (no work left) with only 4 of the 10 requested edges ticked.
    assert clk.cycles == 4


def test_run_cycles_against_paused_clock():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    clk.pause_until(35)
    end = sim.run_cycles(clk, 2)
    # Edge at t=0 defers to the pause end (t=35); the next lands at 45.
    assert clk.cycles == 2
    assert end == 45
    assert clk.paused_edges == 1
    assert clk.total_pause_time == 35


def test_run_cycles_twice_is_cumulative():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    sim.run_cycles(clk, 5)
    sim.run_cycles(clk, 5)
    assert clk.cycles == 10
    assert sim.now == 90


# ----------------------------------------------------------------------
# events vs wakeup buckets
# ----------------------------------------------------------------------

def test_event_notify_at_wakes_thread_later():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    ev = sim.event("e")
    log = []

    def waiter():
        yield ev
        log.append(sim.now)

    sim.add_thread(waiter(), clk, name="w")
    ev.notify_at(55)
    sim.run(until=100)
    assert log == [55]


def test_stopped_clock_never_wakes_subscribed_threads():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    ticks = []

    def body():
        while True:
            yield 4
            ticks.append(sim.now)

    sim.add_thread(body(), clk, name="t")
    sim.run(until=100)
    seen = len(ticks)
    assert seen > 0
    clk.stop()
    sim.run(until=300)
    # The thread stays filed in its wakeup bucket forever.
    assert len(ticks) == seen
    assert clk.pending_wakeups == 1


def test_thread_alternates_event_and_multi_cycle_waits():
    """Wakeup buckets and ``Event._subscribe`` interleave correctly."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    ev = sim.event("e")
    log = []

    def pinger():
        yield 2
        ev.notify()
        yield 5
        ev.notify()

    def waiter():
        yield ev
        log.append(("ev", sim.now))
        yield 3
        log.append(("cyc", sim.now))
        yield ev
        log.append(("ev", sim.now))

    sim.add_thread(pinger(), clk, name="p")
    sim.add_thread(waiter(), clk, name="w")
    sim.run(until=200)
    assert log == [("ev", 20), ("cyc", 50), ("ev", 70)]


# ----------------------------------------------------------------------
# idle-skip bookkeeping
# ----------------------------------------------------------------------

def test_idle_clock_cycle_count_matches_horizon():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    sim.run(until=95)
    # Edges at t=0..90 all "happened" even though none had work.
    assert clk.cycles == 10
    assert sim.now == 95


def test_idle_skip_preserves_sparse_wakeups():
    sim = Simulator()
    clk = sim.add_clock("clk", period=7)
    log = []

    def sleeper():
        yield 1000
        log.append((sim.now, clk.cycles))
        yield 1000
        log.append((sim.now, clk.cycles))

    sim.add_thread(sleeper(), clk, name="s")
    sim.run(until=20_000)
    # First resume at cycle 1 (t=0); then cycles 1001 and 2001.
    assert log == [(7000, 1001), (14000, 2001)]


def test_pause_applies_during_idle_skip():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    clk.pause_until(25)
    sim.run(until=100)
    # t=0 defers to 25; edges then at 25,35,...,95.
    assert clk.cycles == 8
    assert clk.paused_edges == 1
    assert clk.total_pause_time == 25
