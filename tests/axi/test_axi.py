"""Tests for AXI master/slave interfaces and the interconnect fabric."""

import pytest

from repro.axi import (
    AddressRange,
    AxiAR,
    AxiAW,
    AxiError,
    AxiInterconnect,
    AxiMaster,
    AxiMemorySlave,
    AxiRegisterSlave,
    AxiResp,
)
from repro.connections import Buffer
from repro.kernel import Simulator
from repro.matchlib import MemArray


def make_env():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    return sim, clk


def direct_wire(sim, clk, master, slave):
    """Wire a master straight to a slave (no fabric)."""
    for m_port, s_port, tag in (
        (master.aw, slave.aw, "aw"),
        (master.w, slave.w, "w"),
        (master.ar, slave.ar, "ar"),
    ):
        chan = Buffer(sim, clk, capacity=2, name=tag)
        m_port.bind(chan)
        s_port.bind(chan)
    for s_port, m_port, tag in ((slave.b, master.b, "b"), (slave.r, master.r, "r")):
        chan = Buffer(sim, clk, capacity=2, name=tag)
        s_port.bind(chan)
        m_port.bind(chan)


def test_axi_types_validate():
    with pytest.raises(ValueError):
        AxiAW(addr=0, length=0)
    with pytest.raises(ValueError):
        AxiAR(addr=0, length=0)


def test_single_write_then_read():
    sim, clk = make_env()
    mem = MemArray(64, width=32)
    slave = AxiMemorySlave(sim, clk, mem)
    master = AxiMaster()
    direct_wire(sim, clk, master, slave)
    result = {}

    def body():
        yield from master.write(5, 0xABCD)
        result["data"] = yield from master.read(5)

    sim.add_thread(body(), clk, name="m")
    sim.run(until=100_000)
    assert result["data"] == 0xABCD
    assert master.reads_done == 1 and master.writes_done == 1
    assert slave.reads_served == 1 and slave.writes_served == 1


def test_burst_write_read():
    sim, clk = make_env()
    mem = MemArray(64, width=32)
    slave = AxiMemorySlave(sim, clk, mem)
    master = AxiMaster()
    direct_wire(sim, clk, master, slave)
    result = {}

    def body():
        yield from master.write_burst(8, [1, 2, 3, 4])
        result["data"] = yield from master.read_burst(8, 4)

    sim.add_thread(body(), clk, name="m")
    sim.run(until=100_000)
    assert result["data"] == [1, 2, 3, 4]
    assert mem.dump(8, 4) == [1, 2, 3, 4]


def test_out_of_range_write_raises_slverr():
    sim, clk = make_env()
    slave = AxiMemorySlave(sim, clk, MemArray(16, width=32))
    master = AxiMaster()
    direct_wire(sim, clk, master, slave)
    result = {}

    def body():
        try:
            yield from master.write(999, 1)
        except AxiError as exc:
            result["error"] = str(exc)

    sim.add_thread(body(), clk, name="m")
    sim.run(until=100_000)
    assert "SLVERR" in result["error"]


def test_register_slave_callback():
    sim, clk = make_env()
    writes = []
    slave = AxiRegisterSlave(sim, clk, n_regs=8,
                             on_write=lambda a, v: writes.append((a, v)))
    master = AxiMaster()
    direct_wire(sim, clk, master, slave)
    result = {}

    def body():
        yield from master.write(3, 77)
        result["r3"] = yield from master.read(3)

    sim.add_thread(body(), clk, name="m")
    sim.run(until=100_000)
    assert writes == [(3, 77)]
    assert result["r3"] == 77
    assert slave.regs[3] == 77


def test_interconnect_routes_by_address():
    sim, clk = make_env()
    fabric = AxiInterconnect(sim, clk)
    master = AxiMaster()
    fabric.connect_master(master)
    mem_a = MemArray(16, width=32)
    mem_b = MemArray(16, width=32)
    fabric.connect_slave(AxiMemorySlave(sim, clk, mem_a, name="sa"),
                         AddressRange(0x100, 16))
    fabric.connect_slave(AxiMemorySlave(sim, clk, mem_b, name="sb"),
                         AddressRange(0x200, 16))
    result = {}

    def body():
        yield from master.write(0x105, 0xA)
        yield from master.write(0x205, 0xB)
        result["a"] = yield from master.read(0x105)
        result["b"] = yield from master.read(0x205)

    sim.add_thread(body(), clk, name="m")
    sim.run(until=200_000)
    assert result == {"a": 0xA, "b": 0xB}
    assert mem_a.dump(5, 1) == [0xA]   # rebased to slave-local address
    assert mem_b.dump(5, 1) == [0xB]
    assert fabric.transactions == 4


def test_interconnect_decode_error():
    sim, clk = make_env()
    fabric = AxiInterconnect(sim, clk)
    master = AxiMaster()
    fabric.connect_master(master)
    fabric.connect_slave(
        AxiMemorySlave(sim, clk, MemArray(16, width=32)), AddressRange(0, 16))
    result = {}

    def body():
        try:
            yield from master.read(0x9999)
        except AxiError as exc:
            result["error"] = str(exc)

    sim.add_thread(body(), clk, name="m")
    sim.run(until=100_000)
    assert "DECERR" in result["error"]
    assert fabric.decode_errors == 1


def test_interconnect_two_masters_shared_slave():
    sim, clk = make_env()
    fabric = AxiInterconnect(sim, clk)
    m0, m1 = AxiMaster(name="m0", id_=0), AxiMaster(name="m1", id_=1)
    fabric.connect_master(m0)
    fabric.connect_master(m1)
    mem = MemArray(32, width=32)
    fabric.connect_slave(AxiMemorySlave(sim, clk, mem), AddressRange(0, 32))
    done = []

    def worker(master, base):
        for i in range(4):
            yield from master.write(base + i, base * 100 + i)
        done.append(master.name)

    sim.add_thread(worker(m0, 0), clk, name="w0")
    sim.add_thread(worker(m1, 16), clk, name="w1")
    sim.run(until=500_000)
    assert sorted(done) == ["m0", "m1"]
    assert mem.dump(0, 4) == [0, 1, 2, 3]
    assert mem.dump(16, 4) == [1600, 1601, 1602, 1603]


def test_interconnect_rejects_overlapping_ranges():
    sim, clk = make_env()
    fabric = AxiInterconnect(sim, clk)
    fabric.connect_slave(
        AxiMemorySlave(sim, clk, MemArray(16), name="s0"), AddressRange(0, 16))
    with pytest.raises(ValueError):
        fabric.connect_slave(
            AxiMemorySlave(sim, clk, MemArray(16), name="s1"),
            AddressRange(8, 16))


def test_address_range_validation():
    with pytest.raises(ValueError):
        AddressRange(base=-1, size=4)
    with pytest.raises(ValueError):
        AddressRange(base=0, size=0)
    r = AddressRange(0x100, 0x10)
    assert r.contains(0x100) and r.contains(0x10F)
    assert not r.contains(0x110)
    assert r.rebase(0x105) == 5
