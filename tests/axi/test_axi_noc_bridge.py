"""Tests for AXI-over-NoC bridges: a master at one mesh node drives a
memory slave at another, transparently."""

import pytest

from repro.axi import (
    AxiError,
    AxiMaster,
    AxiMemorySlave,
    AxiNocInitiator,
    AxiNocTarget,
)
from repro.connections import Buffer
from repro.kernel import Simulator
from repro.matchlib import MemArray
from repro.noc import Mesh


def bridged_env(*, master_node=0, slave_node=8, mem_words=64):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=3, height=3)
    master = AxiMaster()
    initiator = AxiNocInitiator(sim, clk, mesh.ni(master_node),
                                target_node=slave_node)
    target = AxiNocTarget(sim, clk, mesh.ni(slave_node))
    mem = MemArray(mem_words, width=32)
    slave = AxiMemorySlave(sim, clk, mem)

    # Master <-> initiator (five channels).
    for m_port, i_port, tag in ((master.aw, initiator.aw, "aw"),
                                (master.w, initiator.w, "w"),
                                (master.ar, initiator.ar, "ar")):
        ch = Buffer(sim, clk, capacity=2, name=f"mi.{tag}")
        m_port.bind(ch)
        i_port.bind(ch)
    for i_port, m_port, tag in ((initiator.b, master.b, "b"),
                                (initiator.r, master.r, "r")):
        ch = Buffer(sim, clk, capacity=2, name=f"im.{tag}")
        i_port.bind(ch)
        m_port.bind(ch)

    # Target <-> slave (five channels).
    for t_port, s_port, tag in ((target.aw, slave.aw, "aw"),
                                (target.w, slave.w, "w"),
                                (target.ar, slave.ar, "ar")):
        ch = Buffer(sim, clk, capacity=2, name=f"ts.{tag}")
        t_port.bind(ch)
        s_port.bind(ch)
    for s_port, t_port, tag in ((slave.b, target.b, "b"),
                                (slave.r, target.r, "r")):
        ch = Buffer(sim, clk, capacity=2, name=f"st.{tag}")
        s_port.bind(ch)
        t_port.bind(ch)

    return sim, clk, master, initiator, target, mem


def test_bridged_write_then_read():
    sim, clk, master, initiator, target, mem = bridged_env()
    result = {}

    def body():
        yield from master.write(7, 0xDEAD)
        result["data"] = yield from master.read(7)

    sim.add_thread(body(), clk, name="m")
    sim.run(until=1_000_000)
    assert result["data"] == 0xDEAD
    assert mem.dump(7, 1) == [0xDEAD]
    assert initiator.transactions == 2
    assert target.transactions == 2


def test_bridged_burst():
    sim, clk, master, _, _, mem = bridged_env()
    result = {}

    def body():
        yield from master.write_burst(16, [1, 2, 3, 4, 5])
        result["data"] = yield from master.read_burst(16, 5)

    sim.add_thread(body(), clk, name="m")
    sim.run(until=2_000_000)
    assert result["data"] == [1, 2, 3, 4, 5]
    assert mem.dump(16, 5) == [1, 2, 3, 4, 5]


def test_bridged_error_propagates_across_noc():
    sim, clk, master, _, _, _ = bridged_env(mem_words=8)
    result = {}

    def body():
        try:
            yield from master.read(1000)
        except AxiError as exc:
            result["error"] = str(exc)

    sim.add_thread(body(), clk, name="m")
    sim.run(until=1_000_000)
    assert "SLVERR" in result["error"]


def test_bridged_many_transactions():
    sim, clk, master, _, _, mem = bridged_env()
    done = []

    def body():
        for i in range(12):
            yield from master.write(i, i * 11)
        for i in range(12):
            data = yield from master.read(i)
            assert data == i * 11
        done.append(True)

    sim.add_thread(body(), clk, name="m")
    sim.run(until=5_000_000)
    assert done == [True]
    assert mem.dump(0, 12) == [i * 11 for i in range(12)]


def test_target_rejects_unknown_message():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=2, height=1)
    AxiNocTarget(sim, clk, mesh.ni(1))
    mesh.ni(0).send(1, ["frobnicate", 0])
    with pytest.raises(ValueError, match="unknown bridge message"):
        sim.run(until=100_000)
