"""Tests for the backend-turnaround and productivity models."""

import pytest

from repro.flow import (
    OOHLS_METHODOLOGY,
    RTL_METHODOLOGY,
    FlowRuntimeModel,
    MethodologyModel,
    UnitEffort,
    inventory_efforts,
    inventory_partitions,
    productivity_report,
)
from repro.flow import testchip_inventory as chip_inventory
from repro.gals import Partition


# ----------------------------------------------------------------------
# backend flow runtime
# ----------------------------------------------------------------------
def test_partition_hours_superlinear():
    model = FlowRuntimeModel()
    one = model.partition_hours(1e6)
    two = model.partition_hours(2e6)
    assert two > 2 * one  # superlinear growth is the whole point


def test_partition_hours_validation():
    with pytest.raises(ValueError):
        FlowRuntimeModel().partition_hours(0)


def test_replicated_partitions_counted_once():
    model = FlowRuntimeModel()
    parts = [Partition(f"pe{i}", logic_gates=500_000) for i in range(15)]
    report = model.turnaround(parts)
    assert report.unique_partitions == 1
    assert report.partition_hours == model.partition_hours(500_000)


def test_parallel_vs_serial_turnaround():
    model = FlowRuntimeModel()
    parts = [Partition("a", 1e6), Partition("b", 2e6), Partition("c", 5e5)]
    par = model.turnaround(parts, parallel=True)
    ser = model.turnaround(parts, parallel=False)
    assert par.partition_hours == model.partition_hours(2e6)
    assert ser.partition_hours == pytest.approx(
        sum(model.partition_hours(g) for g in (1e6, 2e6, 5e5)))


def test_gals_removes_top_level_hours():
    model = FlowRuntimeModel()
    parts = [Partition("a", 1e6)]
    gals = model.turnaround(parts, gals=True)
    sync = model.turnaround(parts, gals=False)
    assert gals.top_level_hours == 0.0
    assert sync.top_level_hours > 0.0
    assert sync.total_hours > gals.total_hours


def test_testchip_turnaround_reproduces_12_hour_claim():
    """The paper's 12-hour RTL-to-layout turnaround, within 2x."""
    model = FlowRuntimeModel()
    parts = inventory_partitions(chip_inventory())
    report = model.turnaround(parts, gals=True, parallel=True)
    assert 6.0 <= report.total_hours <= 16.0
    assert report.daily_iterations >= 1.5
    # The flat alternative is order-of-magnitude worse.
    assert model.flat_hours(parts) > 5 * report.total_hours


def test_turnaround_report_text():
    model = FlowRuntimeModel()
    parts = [Partition("a", 1e6)]
    assert "turnaround" in model.turnaround(parts, gals=False).to_text()


# ----------------------------------------------------------------------
# productivity
# ----------------------------------------------------------------------
def test_unit_effort_validation():
    with pytest.raises(ValueError):
        UnitEffort("bad", gates=0, reuse_fraction=0.5)
    with pytest.raises(ValueError):
        UnitEffort("bad", gates=100, reuse_fraction=1.5)


def test_reuse_reduces_effort():
    m = OOHLS_METHODOLOGY
    low = UnitEffort("low", gates=100_000, reuse_fraction=0.1)
    high = UnitEffort("high", gates=100_000, reuse_fraction=0.9)
    assert m.unit_days(high) < m.unit_days(low)
    assert m.productivity(high) > m.productivity(low)


def test_testchip_productivity_in_paper_band():
    """Section 4: 2K-20K NAND2-equivalent gates per engineer-day."""
    report = productivity_report(inventory_efforts(chip_inventory()),
                                 OOHLS_METHODOLOGY)
    assert 2_000 <= report.overall_productivity <= 20_000
    for name, gates_per_day in report.per_unit:
        assert 2_000 <= gates_per_day <= 20_000, name


def test_oohls_significantly_above_rtl_baseline():
    efforts = inventory_efforts(chip_inventory())
    oohls = productivity_report(efforts, OOHLS_METHODOLOGY)
    rtl = productivity_report(efforts, RTL_METHODOLOGY)
    assert oohls.overall_productivity > 5 * rtl.overall_productivity


def test_productivity_report_text():
    report = productivity_report(
        [UnitEffort("u", 100_000, 0.5)], OOHLS_METHODOLOGY)
    assert "gates/engineer-day" in report.to_text()


# ----------------------------------------------------------------------
# inventory
# ----------------------------------------------------------------------
def test_inventory_totals_match_testchip_scale():
    """87M transistors ~= 20-24M NAND2 equivalents."""
    parts = inventory_partitions(chip_inventory())
    total = sum(p.total_gates for p in parts)
    assert 15e6 <= total <= 30e6
    # 15 PEs + 2 gmems + riscv + io = 19 partitions (routers folded in).
    assert len(parts) == 19


def test_inventory_efforts_exclude_external_ip():
    efforts = inventory_efforts(chip_inventory())
    assert all(e.name != "riscv" for e in efforts)
