"""Tests for the Figure 1 front-end flow orchestration."""

import pytest

from repro.flow import crossbar_testbench, run_frontend_flow
from repro.hls import crossbar_dst_loop_design


@pytest.fixture(scope="module")
def crossbar_report():
    design = crossbar_dst_loop_design(4, 32)
    return run_frontend_flow(design, testbench=crossbar_testbench(4, 30))


def test_flow_functional_and_cosim_pass(crossbar_report):
    assert crossbar_report.functional_ok
    assert crossbar_report.cosim_ok


def test_flow_cycle_comparison(crossbar_report):
    # RTL cosim adds per-hop pipeline cycles but stays close.
    assert crossbar_report.cycles_rtl >= crossbar_report.cycles_fast
    assert crossbar_report.cycle_error < 0.25


def test_flow_produces_all_metrics(crossbar_report):
    assert crossbar_report.area.total > 0
    assert crossbar_report.power.total_mw > 0
    assert "module xbar_dst_4x32" in crossbar_report.verilog
    text = crossbar_report.to_text()
    assert "PASS" in text and "mW" in text


def test_flow_detects_wrong_golden():
    design = crossbar_dst_loop_design(2, 8)
    report = run_frontend_flow(design, testbench=crossbar_testbench(2, 10),
                               expected=["bogus"])
    assert not report.functional_ok
    assert not report.cosim_ok
