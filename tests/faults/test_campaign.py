"""Campaign runner: classification, shrinking, and sweep integration."""

import json

import pytest

from repro.faults import (FaultPlan, HARNESSES, default_plan, execute,
                          shrink)
from repro.faults.campaign import summarize_sweep, sweep_space
from repro.sweep import run_sweep
from repro.sweep.serialize import NONDETERMINISTIC_FIELDS, to_jsonable


# ----------------------------------------------------------------------
# outcome classification
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", [n for n, h in HARNESSES.items()
                                  if h.in_default_matrix])
def test_fault_free_runs_are_clean(name):
    record = execute(name, FaultPlan(seed=0), seed=0)
    assert record["outcome"] == "clean", record
    assert record["ok"]
    assert record["injected"] == {}


def test_forced_drop_is_detected_by_verification():
    plan = FaultPlan(seed=0).drop("down", probability=1.0)
    record = execute("stall_verification", plan, seed=0)
    assert record["outcome"] == "detected"
    assert record["injected"]["down"]["drops"] > 0
    assert record["ok"]


def test_packet_checksum_flags_corruption():
    plan = FaultPlan(seed=0).corrupt("chip.wire", probability=1.0)
    record = execute("packet_stream", plan, seed=0)
    assert record["outcome"] == "detected"
    # The DePacketizer's end-to-end checksum caught the flips itself.
    assert record["harness_detected"] > 0


def test_deadlock_demo_hangs_with_path_level_diagnosis():
    record = execute("deadlock_demo", FaultPlan(seed=0), seed=0)
    assert record["outcome"] == "hang"
    assert record["ok"]  # hang is this harness's expected outcome
    head = record["diagnosis"][0]
    assert head["type"] == "hang" and head["kind"] == "deadlock"
    channels = {r["channel"] for r in record["diagnosis"]
                if r["type"] == "hang.thread"}
    assert channels == {"chip.ab", "chip.ba"}


def test_execute_is_byte_reproducible():
    plan1 = default_plan("fig3_crossbar", seed=7)
    plan2 = default_plan("fig3_crossbar", seed=7)
    assert plan1.describe() == plan2.describe()
    rec1 = execute("fig3_crossbar", plan1, seed=7)
    rec2 = execute("fig3_crossbar", plan2, seed=7)
    assert json.dumps(rec1, sort_keys=True) == json.dumps(rec2,
                                                          sort_keys=True)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def test_shrink_reduces_to_single_culprit_directive():
    plan = (FaultPlan(seed=5)
            .stall_burst("down", start=10, length=40, probability=0.8)
            .drop("down", probability=1.0)
            .stall_burst("up", start=0, length=20, probability=0.5))
    record = execute("stall_verification", plan, seed=5)
    assert record["outcome"] == "detected"
    small = shrink("stall_verification", plan, seed=5,
                   target_outcome="detected")
    assert len(small.directives) == 1
    assert small.directives[0].kind == "drop"
    # The shrunk plan still reproduces on its own.
    assert execute("stall_verification", small,
                   seed=5)["outcome"] == "detected"


# ----------------------------------------------------------------------
# sweep integration
# ----------------------------------------------------------------------
def test_sweep_space_validates_experiment_names():
    with pytest.raises(KeyError):
        sweep_space(experiments=["nope"], cases=1)


def test_campaign_sweep_results_are_byte_identical_across_runs():
    points = sweep_space(experiments=["stall_verification"], cases=2,
                         seed=3)
    blobs = []
    for _ in range(2):
        result = run_sweep(points, jobs=1, cache=None, timeout=None,
                           telemetry=False)
        payload = to_jsonable(result.results,
                              exclude=NONDETERMINISTIC_FIELDS)
        blobs.append(json.dumps(payload, sort_keys=True))
    assert blobs[0] == blobs[1]
    text = summarize_sweep(result.results)
    assert "stall_verification" in text
