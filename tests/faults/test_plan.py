"""FaultPlan semantics: determinism, fault behaviour, target resolution."""

import pytest

from repro.connections import Buffer, In, Out
from repro.faults import FaultPlan
from repro.kernel import Simulator


def _pipe(n_msgs=10, capacity=2, drain=400):
    """One producer, one channel ``chip.c``, one bounded consumer.

    Returns ``(sim, chan, received)``; run the sim, then inspect.
    """
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with sim.design.scope("chip", kind="Chip", clock=clk):
        chan = Buffer(sim, clk, capacity=capacity, name="c")
        out = Out(chan, name="out")
        inp = In(chan, name="in")
        received = []

        def producer():
            for i in range(n_msgs):
                yield from out.push(i)

        def consumer():
            for _ in range(drain):
                ok, msg = inp.pop_nb()
                if ok:
                    received.append(msg)
                yield

        sim.add_thread(producer(), clk, name="prod")
        sim.add_thread(consumer(), clk, name="cons")
    return sim, chan, received


def _run(sim):
    sim.run(until=100_000)


# ----------------------------------------------------------------------
# fault behaviour at probability 1
# ----------------------------------------------------------------------
def test_drop_all_messages_accepted_but_lost():
    sim, chan, received = _pipe()
    applied = FaultPlan(seed=1).drop("chip.c", probability=1.0).apply(sim)
    _run(sim)
    assert received == []
    faults = applied.channels["chip.c"]
    assert faults.drops == 10
    # Dropped messages never occupy the buffer, so it stays empty.
    assert chan.occupancy == 0
    assert applied.lossy_events() == 10


def test_duplicate_every_message_twice():
    sim, chan, received = _pipe(n_msgs=5)
    applied = FaultPlan(seed=1).duplicate("chip.c",
                                          probability=1.0).apply(sim)
    _run(sim)
    assert received == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]
    assert applied.channels["chip.c"].duplicates == 5


def test_corrupt_transforms_payloads_and_counts():
    sim, chan, received = _pipe(n_msgs=8)
    applied = FaultPlan(seed=1).corrupt(
        "chip.c", probability=1.0,
        corrupter=lambda payload, rng: payload ^ 1).apply(sim)
    _run(sim)
    assert received == [i ^ 1 for i in range(8)]
    # i=1 corrupts to 0... every value changed, so all 8 count.
    assert applied.channels["chip.c"].corruptions == 8


def test_noop_corruption_is_not_counted():
    sim, chan, received = _pipe(n_msgs=4)
    applied = FaultPlan(seed=1).corrupt(
        "chip.c", probability=1.0,
        corrupter=lambda payload, rng: payload).apply(sim)
    _run(sim)
    assert received == [0, 1, 2, 3]
    assert applied.channels["chip.c"].corruptions == 0
    assert applied.lossy_events() == 0


def test_stall_burst_window_and_full_reset():
    sim, chan, received = _pipe(n_msgs=10, drain=400)
    FaultPlan(seed=1).stall_burst("chip.c", start=5, length=20,
                                  probability=1.0).apply(sim)
    _run(sim)
    # The burst withheld valid for its window, then fully reset.
    assert 15 <= chan.stats.stall_cycles <= 25
    assert chan._stall_probability == 0.0
    assert chan._stall_rng is None and chan._stalled is False
    assert received == list(range(10))  # bounded burst only delays


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_same_seed_same_faults():
    outs = []
    for _ in range(2):
        sim, chan, received = _pipe(n_msgs=30, drain=600)
        applied = FaultPlan(seed=42).drop(
            "chip.c", probability=0.4).apply(sim)
        _run(sim)
        outs.append((list(received), applied.channels["chip.c"].drops))
    assert outs[0] == outs[1]
    assert 0 < outs[0][1] < 30  # the fault actually fired, partially


def test_different_seeds_differ():
    outs = []
    for seed in (1, 2):
        sim, chan, received = _pipe(n_msgs=30, drain=600)
        FaultPlan(seed=seed).drop("chip.c", probability=0.4).apply(sim)
        _run(sim)
        outs.append(list(received))
    assert outs[0] != outs[1]


def test_directive_seeds_stable_under_shrink_removal():
    plan = FaultPlan(seed=9)
    plan.drop("a", probability=0.5)
    plan.duplicate("b", probability=0.5)
    plan.corrupt("c", probability=0.5)
    smaller = plan.without(0)
    assert [d.seed for d in smaller.directives] \
        == [d.seed for d in plan.directives[1:]]
    assert smaller.describe() == plan.describe()[1:]


def test_clock_jitter_is_deterministic():
    finals = []
    for _ in range(2):
        sim, chan, received = _pipe(n_msgs=20, drain=500)
        FaultPlan(seed=3).clock_jitter("clk", amplitude=3,
                                       every=5).apply(sim)
        _run(sim)
        finals.append((list(received), sim._clocks[0].cycles))
    assert finals[0] == finals[1]
    assert finals[0][0] == list(range(20))  # jitter reorders nothing


# ----------------------------------------------------------------------
# validation and target resolution
# ----------------------------------------------------------------------
def test_unknown_channel_target_raises():
    sim, chan, received = _pipe()
    with pytest.raises(ValueError, match="nope"):
        FaultPlan(seed=0).drop("nope", probability=0.5).apply(sim)


def test_unknown_clock_target_raises():
    sim, chan, received = _pipe()
    with pytest.raises(ValueError, match="ghost"):
        FaultPlan(seed=0).clock_jitter("ghost", amplitude=2).apply(sim)


def test_probability_bounds_enforced():
    plan = FaultPlan(seed=0)
    with pytest.raises(ValueError):
        plan.drop("c", probability=0.0)
    with pytest.raises(ValueError):
        plan.duplicate("c", probability=1.5)
    with pytest.raises(ValueError):
        plan.stall_burst("c", start=-1, length=10)
    with pytest.raises(ValueError):
        plan.clock_drift("clk", rate=0)


def test_plain_name_resolves_when_unique():
    sim, chan, received = _pipe(n_msgs=3)
    applied = FaultPlan(seed=1).drop("c", probability=1.0).apply(sim)
    _run(sim)
    assert received == []
    # Resolution records the full dotted path, not the bare name.
    assert list(applied.channels) == ["chip.c"]


def test_helper_threads_are_registered_for_watchdog_exemption():
    sim, chan, received = _pipe()
    FaultPlan(seed=1).clock_jitter("clk", amplitude=2).apply(sim)
    FaultPlan(seed=2).stall_burst("chip.c", start=0, length=10).apply(sim)
    assert len(sim._fault_helper_threads) == 2
