"""Watchdog semantics: deadlock, livelock, budget, and no false alarms."""

import io
import json

import pytest

from repro import observe
from repro.connections import Buffer, In, Out
from repro.faults import HangError, Watchdog, build_deadlock_fixture
from repro.kernel import Simulator


# ----------------------------------------------------------------------
# deadlock diagnosis (the acceptance-criterion fixture)
# ----------------------------------------------------------------------
def test_deadlock_raises_instead_of_spinning_to_until():
    sim, clk = build_deadlock_fixture()
    Watchdog(sim, clk, window=400)
    with pytest.raises(HangError):
        sim.run(until=10_000_000)
    # Diagnosed within a couple of windows, not at the time bound.
    assert sim.now < 100_000


def test_deadlock_diagnosis_names_threads_and_dotted_paths():
    sim, clk = build_deadlock_fixture()
    Watchdog(sim, clk, window=400)
    with pytest.raises(HangError) as excinfo:
        sim.run(until=10_000_000)
    diag = excinfo.value.diagnosis
    assert diag.kind == "deadlock"
    by_thread = {t.thread: t for t in diag.threads}
    assert set(by_thread) == {"chip.a.ctl", "chip.b.ctl"}
    assert by_thread["chip.a.ctl"].channel == "chip.ba"
    assert by_thread["chip.b.ctl"].channel == "chip.ab"
    assert all(t.op == "pop" for t in diag.threads)
    assert all(t.waited_cycles > 0 for t in diag.threads)
    # Crossed handshakes form a wait-for cycle over both channels.
    assert diag.wait_cycle
    joined = " ".join(diag.wait_cycle)
    assert "chip.ab" in joined and "chip.ba" in joined
    # Human rendering names the paths too.
    text = str(excinfo.value)
    assert "chip.a.ctl" in text and "chip.ba" in text


def test_diagnosis_exports_as_jsonl():
    sim, clk = build_deadlock_fixture()
    Watchdog(sim, clk, window=400)
    with pytest.raises(HangError) as excinfo:
        sim.run(until=10_000_000)
    records = excinfo.value.diagnosis.to_records()
    fh = io.StringIO()
    assert observe.write_jsonl(records, fh) == len(records)
    lines = fh.getvalue().splitlines()
    head = json.loads(lines[0])
    assert head["type"] == "hang" and head["kind"] == "deadlock"
    kinds = {json.loads(line)["type"] for line in lines}
    assert {"hang", "hang.thread", "hang.channel"} <= kinds


# ----------------------------------------------------------------------
# livelock / starvation
# ----------------------------------------------------------------------
def test_livelock_on_zero_token_progress():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with sim.design.scope("chip", kind="Chip", clock=clk):
        chan = Buffer(sim, clk, capacity=2, name="c")
        inp = In(chan, name="in")

        def poller():
            while True:  # alive and polling, but nothing ever arrives
                inp.pop_nb()
                yield

        sim.add_thread(poller(), clk, name="poll")
    Watchdog(sim, clk, window=200)
    with pytest.raises(HangError) as excinfo:
        sim.run(until=1_000_000)
    diag = excinfo.value.diagnosis
    assert diag.kind == "livelock"
    assert diag.window == 200


def test_slow_but_live_design_never_trips_across_window_boundaries():
    """One token per 90 cycles under a 100-cycle window: progress always
    lands inside every window, including ones straddling check times."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    received = []
    with sim.design.scope("chip", kind="Chip", clock=clk):
        chan = Buffer(sim, clk, capacity=2, name="c")
        out = Out(chan, name="out")
        inp = In(chan, name="in")

        def producer():
            for i in range(12):
                yield 90
                assert out.push_nb(i)

        def consumer():
            for _ in range(1150):
                ok, msg = inp.pop_nb()
                if ok:
                    received.append(msg)
                yield

        sim.add_thread(producer(), clk, name="prod")
        sim.add_thread(consumer(), clk, name="cons")
    Watchdog(sim, clk, window=100, check_every=25)
    sim.run(until=12_000)  # no HangError: slow is not stuck
    assert received == list(range(12))


def test_watchdog_stands_down_when_design_finishes():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with sim.design.scope("chip", kind="Chip", clock=clk):
        chan = Buffer(sim, clk, capacity=4, name="c")
        out = Out(chan, name="out")

        def short():
            yield from out.push(1)

        sim.add_thread(short(), clk, name="ctl")
    wd = Watchdog(sim, clk, window=40, check_every=10)
    # Design threads end immediately; the watchdog must notice, retire
    # its own thread, and never raise on the finished design.
    sim.run(until=2_000)
    assert wd._thread.done


# ----------------------------------------------------------------------
# cycle budget
# ----------------------------------------------------------------------
def test_budget_diagnosis_when_design_overstays():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with sim.design.scope("chip", kind="Chip", clock=clk):
        chan = Buffer(sim, clk, capacity=2, name="c")
        out = Out(chan, name="out")
        inp = In(chan, name="in")

        def churner():
            i = 0
            while True:  # forever busy: real progress, never finishes
                if out.push_nb(i):
                    i += 1
                inp.pop_nb()
                yield

        sim.add_thread(churner(), clk, name="ctl")
    Watchdog(sim, clk, window=100_000, max_cycles=500)
    with pytest.raises(HangError) as excinfo:
        sim.run(until=100_000_000)
    assert excinfo.value.diagnosis.kind == "budget"
    assert sim.now <= 10 * 1200  # stopped near the 500-cycle budget


# ----------------------------------------------------------------------
# bookkeeping
# ----------------------------------------------------------------------
def test_blocked_state_cleared_on_unblock():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with sim.design.scope("chip", kind="Chip", clock=clk):
        chan = Buffer(sim, clk, capacity=2, name="c")
        out = Out(chan, name="out")
        inp = In(chan, name="in")

        def producer():
            yield 5
            assert out.push_nb(42)

        def consumer():
            msg = yield from inp.pop()  # blocks for ~6 cycles first
            assert msg == 42

        sim.add_thread(producer(), clk, name="prod")
        sim.add_thread(consumer(), clk, name="cons")
    wd = Watchdog(sim, clk, window=1000)
    sim.run(until=200)
    assert wd._blocked == {}


def test_double_watchdog_rejected_and_params_validated():
    sim, clk = build_deadlock_fixture()
    Watchdog(sim, clk, window=400)
    with pytest.raises(ValueError):
        Watchdog(sim, clk, window=400)
    sim2, clk2 = build_deadlock_fixture()
    with pytest.raises(ValueError):
        Watchdog(sim2, clk2, window=1)
    with pytest.raises(ValueError):
        Watchdog(sim2, clk2, window=100, check_every=100)
