"""Tests for golden references and SoC workloads (small configurations)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.verify.profiles import property_settings

from repro.workloads import (
    conv2d_ref,
    conv2d_workload,
    dot_product_workload,
    dot_ref,
    gemm_ref,
    gemm_workload,
    kmeans_min_distances_ref,
    kmeans_workload,
    mask32,
    memcpy_workload,
    reduction_workload,
    run_workload,
    scale_ref,
    sum_ref,
    vector_scale_workload,
)


# ----------------------------------------------------------------------
# golden references
# ----------------------------------------------------------------------
def test_scale_and_sum_refs():
    assert scale_ref([1, 2, 3], 4) == [4, 8, 12]
    assert scale_ref([1], -1) == [0xFFFFFFFF]
    assert sum_ref([1, 2, 3]) == 6
    assert sum_ref([0xFFFFFFFF, 2]) == 1  # -1 + 2


def test_dot_ref():
    assert dot_ref([1, 2], [3, 4]) == 11
    with pytest.raises(ValueError):
        dot_ref([1], [1, 2])


def test_conv2d_ref_known_answer():
    image = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
    kernel = [[0, 0, 0], [0, 1, 0], [0, 0, 0]]  # identity at center
    assert conv2d_ref(image, kernel) == [[5]]
    kernel_sum = [[1, 1, 1], [1, 1, 1], [1, 1, 1]]
    assert conv2d_ref(image, kernel_sum) == [[45]]
    with pytest.raises(ValueError):
        conv2d_ref([[1]], kernel)


def test_gemm_ref_identity():
    a = [[1, 2], [3, 4]]
    identity = [[1, 0], [0, 1]]
    assert gemm_ref(a, identity) == a
    with pytest.raises(ValueError):
        gemm_ref(a, [[1, 2]])


def test_gemm_ref_against_numpy():
    import numpy as np

    rng = np.random.default_rng(1)
    a = rng.integers(-100, 100, (5, 7)).tolist()
    b = rng.integers(-100, 100, (7, 3)).tolist()
    want = (np.array(a) @ np.array(b)) % (1 << 32)
    assert gemm_ref(a, b) == want.tolist()


def test_kmeans_ref_known_answer():
    points = [[0, 0], [10, 10]]
    centroids = [[0, 1], [10, 9]]
    assert kmeans_min_distances_ref(points, centroids) == [1, 1]
    with pytest.raises(ValueError):
        kmeans_min_distances_ref(points, [])


@given(st.lists(st.integers(0, 2**31), min_size=1, max_size=32),
       st.integers(-100, 100))
@property_settings()
def test_scale_ref_distributes_over_sum(vec, factor):
    assert sum_ref(scale_ref(vec, factor)) == mask32(sum_ref(vec) * factor)


# ----------------------------------------------------------------------
# SoC workloads (small configurations, bit-exact checks inside run)
# ----------------------------------------------------------------------
def test_vector_scale_on_soc():
    soc = run_workload(vector_scale_workload(n_pes=4, n_per_pe=16))
    assert soc.elapsed_cycles > 0
    assert soc.total_pe_elements > 0


def test_memcpy_on_soc():
    run_workload(memcpy_workload(n_pes=4, n_per_pe=16))


def test_reduction_on_soc():
    run_workload(reduction_workload(n_pes=4, n_per_pe=16))


def test_dot_product_on_soc():
    run_workload(dot_product_workload(n_pes=4, n_per_pe=16))


def test_conv2d_on_soc():
    run_workload(conv2d_workload(height=6, width=8))


def test_kmeans_on_soc():
    run_workload(kmeans_workload(n_points=16, dim=2, k=2, n_pes=4))


def test_gemm_on_soc():
    run_workload(gemm_workload(m=4, k=4, n=4))


def test_workload_on_gals_soc():
    """LI design guarantee: same bit-exact results on the GALS chip."""
    run_workload(vector_scale_workload(n_pes=4, n_per_pe=16), gals=True)


def test_kmeans_validation():
    with pytest.raises(ValueError):
        kmeans_workload(n_points=10, n_pes=4)  # not divisible


def test_gemm_validation():
    with pytest.raises(ValueError):
        gemm_workload(m=32)


def test_conv2d_fp16_on_soc():
    """The FP16 datapath end to end: bit-exact vs MatchLib float ops."""
    from repro.workloads import conv2d_fp16_workload

    run_workload(conv2d_fp16_workload(height=5, width=7))


def test_soc_runs_are_deterministic():
    """Same workload, same seeds: identical cycle counts and outputs."""
    wl = vector_scale_workload(n_pes=4, n_per_pe=16)
    soc_a = run_workload(wl)
    soc_b = run_workload(wl)
    assert soc_a.finish_time == soc_b.finish_time
    assert soc_a.gmem_left.dump(0, 128) == soc_b.gmem_left.dump(0, 128)
