"""Tests for the full prototype SoC (chip assembly and controller)."""

import pytest

from repro.soc import Cmd, Kernel, PrototypeSoC, encode_command_table
from repro.soc.controller import command_player_firmware


def basic_commands(pe=0, gmem=17, ctrl=16):
    return [
        ("send", pe, [int(Cmd.WRITE_SPAD), 0, 1, 2, 3, 4]),
        ("send", pe, [int(Cmd.COMPUTE), int(Kernel.VSUM), 0, 0, 16, 4, 0]),
        ("send", pe, [int(Cmd.STORE), gmem, 0, 16, 1]),
        ("send", pe, [int(Cmd.NOTIFY), ctrl, 7]),
        ("wait", 1),
    ]


def test_encode_command_table():
    table = encode_command_table([("send", 3, [10, 20]), ("wait", 2)])
    assert table == [3, 2, 10, 20, 0xFFFFFFFE, 2, 0xFFFFFFFF]


def test_encode_command_table_validation():
    with pytest.raises(ValueError):
        encode_command_table([("send", -1, [1])])
    with pytest.raises(ValueError):
        encode_command_table([("frob", 1)])


def test_firmware_assembles():
    words = command_player_firmware()
    assert len(words) > 10
    assert all(0 <= w <= 0xFFFFFFFF for w in words)


def test_soc_end_to_end_fast():
    soc = PrototypeSoC(commands=basic_commands())
    soc.run()
    assert soc.gmem_left.dump(0, 1) == [10]
    assert soc.controller.done_tokens == [7]
    assert soc.elapsed_cycles > 0


def test_soc_all_pes_notify():
    commands = [("send", pe, [int(Cmd.NOTIFY), 16, pe]) for pe in range(16)]
    commands.append(("wait", 16))
    soc = PrototypeSoC(commands=commands)
    soc.run()
    assert sorted(soc.controller.done_tokens) == list(range(16))


def test_soc_both_gmems():
    commands = [
        ("send", 0, [int(Cmd.WRITE_SPAD), 0, 11, 22]),
        ("send", 0, [int(Cmd.STORE), 17, 5, 0, 2]),
        ("send", 0, [int(Cmd.STORE), 18, 9, 0, 2]),
        ("send", 0, [int(Cmd.NOTIFY), 16, 1]),
        ("wait", 1),
    ]
    soc = PrototypeSoC(commands=commands)
    soc.run()
    assert soc.gmem_left.dump(5, 2) == [11, 22]
    assert soc.gmem_right.dump(9, 2) == [11, 22]
    assert soc.gmem(17) is soc.gmem_left
    assert soc.gmem(18) is soc.gmem_right
    with pytest.raises(ValueError):
        soc.gmem(0)


def test_soc_rtl_mode_same_results():
    soc = PrototypeSoC(commands=basic_commands(), mode="rtl")
    soc.run()
    assert soc.gmem_left.dump(0, 1) == [10]
    assert len(soc.rtl_activities) > 0


def test_soc_gals_mode_same_results():
    soc = PrototypeSoC(commands=basic_commands(), gals=True)
    soc.run()
    assert soc.gmem_left.dump(0, 1) == [10]
    assert len(soc.clock_generators) == 20
    # Every node has its own period (plesiochronous by construction).
    periods = {g.nominal_period for g in soc.clock_generators}
    assert len(periods) > 5


def test_soc_gals_with_noise():
    soc = PrototypeSoC(commands=basic_commands(), gals=True,
                       noise_amplitude=0.05)
    soc.run()
    assert soc.gmem_left.dump(0, 1) == [10]
    assert any(g.period_max > g.nominal_period for g in soc.clock_generators)


def test_soc_validation():
    with pytest.raises(ValueError):
        PrototypeSoC(mode="netlist")
    with pytest.raises(ValueError):
        PrototypeSoC(mode="rtl", gals=True)


def test_soc_timeout_detection():
    # A wait that can never be satisfied.
    soc = PrototypeSoC(commands=[("wait", 1)])
    with pytest.raises(RuntimeError, match="did not finish"):
        soc.run(max_ticks=500_000)


def test_soc_custom_geometry():
    commands = [
        ("send", 0, [int(Cmd.NOTIFY), 4, 9]),  # controller at node 4 (2x2+row)
        ("wait", 1),
    ]
    soc = PrototypeSoC(commands=commands, pe_columns=2, pe_rows=2)
    assert soc.n_pes == 4
    assert soc.controller_node == 4
    soc.run()
    assert soc.controller.done_tokens == [9]
