"""Tests for the RTL netlist-activity model (Figure 6's cost stand-in)."""

import time

import pytest

from repro.kernel import Simulator
from repro.soc.rtl_activity import DEFAULT_UNIT_REGS, RtlActivity


def test_activity_registers_toggle_every_cycle():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    act = RtlActivity(sim, clk, n_regs=16)
    sim.run(until=50)
    snapshot1 = [r.read() for r in act._regs]
    sim.run(until=100)
    snapshot2 = [r.read() for r in act._regs]
    assert snapshot1 != snapshot2
    # The shift pipeline moves values down the register bank.
    assert snapshot2[2] != snapshot1[2]


def test_activity_comb_methods_follow_registers():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    act = RtlActivity(sim, clk, n_regs=16, comb_fanout=4)
    sim.run(until=100)
    for i, comb in enumerate(act._comb):
        srcs = act._regs[i * 4:(i + 1) * 4]
        expect = 0
        for s in srcs:
            expect ^= s.read()
        assert comb.read() == expect


def test_activity_cost_scales_with_regs():
    def wall(n_regs, cycles=300):
        sim = Simulator()
        clk = sim.add_clock("clk", period=10)
        RtlActivity(sim, clk, n_regs=n_regs)
        start = time.perf_counter()
        sim.run(until=cycles * 10)
        return time.perf_counter() - start

    small = wall(16)
    large = wall(256)
    assert large > 3 * small  # simulation cost tracks netlist size


def test_activity_validation():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with pytest.raises(ValueError):
        RtlActivity(sim, clk, n_regs=2)


def test_default_unit_sizes_defined():
    for unit in ("pe", "router", "gmem", "controller"):
        assert DEFAULT_UNIT_REGS[unit] >= 4
