"""Unit tests for the PE and global memory over a small mesh."""

import pytest

from repro.kernel import Simulator
from repro.matchlib import FP16
from repro.noc import Mesh
from repro.soc import Cmd, Kernel
from repro.soc.global_memory import GlobalMemory
from repro.soc.pe import ProcessingElement


def make_pe_env(*, lanes=4, spad_words=256, gmem_words=512):
    """2x1 mesh: PE at node 0, global memory at node 1."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=2, height=1)
    pe = ProcessingElement(sim, clk, mesh.ni(0), lanes=lanes,
                           spad_words=spad_words)
    gmem = GlobalMemory(sim, clk, mesh.ni(1), words=gmem_words, n_banks=4)
    return sim, mesh, pe, gmem


def drive(sim, mesh, src_node, dest, payloads, *, until=500_000):
    mesh.ni(src_node).send(dest, [int(p) for p in payloads])
    sim.run(until=until)


def run_commands(commands, *, preload=None, until=1_000_000, **env_kw):
    """Push commands into the PE from a fake controller at the gmem node."""
    sim, mesh, pe, gmem = make_pe_env(**env_kw)
    if preload:
        gmem.load(preload)
    for cmd in commands:
        mesh.ni(1).send(0, [int(w) for w in cmd])
    sim.run(until=until)
    return sim, mesh, pe, gmem


def test_write_spad_and_store():
    _, _, pe, gmem = run_commands([
        [Cmd.WRITE_SPAD, 0, 5, 6, 7, 8],
        [Cmd.STORE, 1, 100, 0, 4],
    ])
    assert gmem.dump(100, 4) == [5, 6, 7, 8]
    assert pe.commands_executed == 2


def test_load_compute_store_roundtrip():
    _, _, pe, gmem = run_commands([
        [Cmd.LOAD, 1, 0, 0, 8],
        [Cmd.COMPUTE, Kernel.SCALE, 0, 0, 8, 8, 10],
        [Cmd.STORE, 1, 64, 8, 8],
    ], preload=list(range(8)))
    assert gmem.dump(64, 8) == [i * 10 for i in range(8)]


@pytest.mark.parametrize("kernel,a,b,param,expected", [
    (Kernel.VADD, [1, 2, 3, 4], [10, 20, 30, 40], 0, [11, 22, 33, 44]),
    (Kernel.VMUL, [1, 2, 3, 4], [5, 6, 7, 8], 0, [5, 12, 21, 32]),
    (Kernel.VMIN, [9, 2, 7, 1], [3, 5, 6, 8], 0, [3, 2, 6, 1]),
])
def test_two_operand_kernels(kernel, a, b, param, expected):
    _, _, _, gmem = run_commands([
        [Cmd.WRITE_SPAD, 0] + a,
        [Cmd.WRITE_SPAD, 8] + b,
        [Cmd.COMPUTE, kernel, 0, 8, 16, 4, param],
        [Cmd.STORE, 1, 50, 16, 4],
    ])
    assert gmem.dump(50, 4) == expected


@pytest.mark.parametrize("kernel,a,param,expected", [
    (Kernel.VSUM, [1, 2, 3, 4], 0, [10]),
    (Kernel.VMAX, [3, 9, 1, 5], 0, [9]),
    (Kernel.RELU, [1, 0xFFFFFFFF, 3, 0xFFFFFFFE], 0, [1, 0, 3, 0]),
    (Kernel.SCALE, [1, 2, 3, 4], 5, [5, 10, 15, 20]),
    (Kernel.ADDS, [10, 20, 30, 40], 7, [17, 27, 37, 47]),
])
def test_one_operand_kernels(kernel, a, param, expected):
    length = 1 if kernel in (Kernel.VSUM, Kernel.VMAX) else 4
    _, _, _, gmem = run_commands([
        [Cmd.WRITE_SPAD, 0] + a,
        [Cmd.COMPUTE, kernel, 0, 0, 16, 4, param],
        [Cmd.STORE, 1, 50, 16, length],
    ])
    assert gmem.dump(50, length) == expected


def test_dot_and_l2dist_kernels():
    _, _, _, gmem = run_commands([
        [Cmd.WRITE_SPAD, 0, 1, 2, 3],
        [Cmd.WRITE_SPAD, 8, 4, 5, 6],
        [Cmd.COMPUTE, Kernel.DOT, 0, 8, 16, 3, 0],
        [Cmd.COMPUTE, Kernel.L2DIST, 0, 8, 17, 3, 0],
        [Cmd.STORE, 1, 50, 16, 2],
    ])
    assert gmem.dump(50, 2) == [32, 27]  # 4+10+18, 9+9+9


def test_negative_int_arithmetic():
    minus_two = 0xFFFFFFFE
    _, _, _, gmem = run_commands([
        [Cmd.WRITE_SPAD, 0, 3, minus_two, 5, 0],
        [Cmd.COMPUTE, Kernel.SCALE, 0, 0, 8, 4, minus_two],
        [Cmd.STORE, 1, 40, 8, 4],
    ])
    assert gmem.dump(40, 4) == [0xFFFFFFFA, 4, 0xFFFFFFF6, 0]


def test_fp16_kernels():
    enc = FP16.encode
    a = [enc(1.5), enc(-2.0), enc(0.25), enc(4.0)]
    b = [enc(2.0), enc(3.0), enc(4.0), enc(0.5)]
    _, _, _, gmem = run_commands([
        [Cmd.WRITE_SPAD, 0] + a,
        [Cmd.WRITE_SPAD, 8] + b,
        [Cmd.COMPUTE, Kernel.VMUL_FP16, 0, 8, 16, 4, 0],
        [Cmd.COMPUTE, Kernel.DOT_FP16, 0, 8, 24, 4, 0],
        [Cmd.COMPUTE, Kernel.RELU_FP16, 0, 0, 32, 4, 0],
        [Cmd.STORE, 1, 60, 16, 4],
        [Cmd.STORE, 1, 70, 24, 1],
        [Cmd.STORE, 1, 80, 32, 4],
    ])
    assert [FP16.decode(v) for v in gmem.dump(60, 4)] == [3.0, -6.0, 1.0, 2.0]
    assert FP16.decode(gmem.dump(70, 1)[0]) == 0.0  # 3 - 6 + 1 + 2
    assert [FP16.decode(v) for v in gmem.dump(80, 4)] == [1.5, 0.0, 0.25, 4.0]


def test_pe_notify_sends_done():
    sim, mesh, pe, gmem = make_pe_env()
    tokens = []
    mesh.ni(1).handler = None  # detach gmem handler to observe raw messages
    received = []
    mesh.ni(1).handler = lambda src, p: received.append((src, p))
    mesh.ni(1).send(0, [int(Cmd.NOTIFY), 1, 42])
    sim.run(until=100_000)
    assert (0, [int(Cmd.DONE), 42]) in received


def test_pe_rejects_unknown_command():
    sim, mesh, pe, gmem = make_pe_env()
    mesh.ni(1).send(0, [9999])
    with pytest.raises(ValueError, match="unknown command"):
        sim.run(until=100_000)


def test_pe_load_length_mismatch_detected():
    # GM_DATA forged with wrong length.
    sim, mesh, pe, gmem = make_pe_env()
    mesh.ni(1).handler = lambda src, p: None  # silence gmem
    mesh.ni(1).send(0, [int(Cmd.LOAD), 1, 0, 0, 8])
    sim.run(until=20_000)
    mesh.ni(1).send(0, [int(Cmd.GM_DATA), 0, 1, 2])  # tag 0, only 2 words
    with pytest.raises(ValueError, match="LOAD expected"):
        sim.run(until=200_000)


def test_gmem_read_write_roundtrip_via_messages():
    sim, mesh, pe, gmem = make_pe_env()
    replies = []
    mesh.ni(0).handler = lambda src, p: replies.append(p)
    mesh.ni(0).send(1, [int(Cmd.GM_WRITE), 10, 0xFFFFFFFF, 0, 7, 8, 9])
    sim.run(until=50_000)
    mesh.ni(0).send(1, [int(Cmd.GM_READ), 10, 3, 0, 77])
    sim.run(until=100_000)
    assert gmem.dump(10, 3) == [7, 8, 9]
    assert [int(Cmd.GM_DATA), 77, 7, 8, 9] in replies
    assert gmem.writes_served == 1 and gmem.reads_served == 1


def test_gmem_write_ack():
    sim, mesh, pe, gmem = make_pe_env()
    replies = []
    mesh.ni(0).handler = lambda src, p: replies.append(p)
    mesh.ni(0).send(1, [int(Cmd.GM_WRITE), 0, 0, 55, 1, 2])  # reply to node 0
    sim.run(until=50_000)
    assert [int(Cmd.GM_DATA), 55] in replies


def test_pe_validation():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=2, height=1)
    with pytest.raises(ValueError):
        ProcessingElement(sim, clk, mesh.ni(0), lanes=0)
    with pytest.raises(ValueError):
        GlobalMemory(sim, clk, mesh.ni(1), n_banks=0)
