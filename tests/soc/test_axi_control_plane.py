"""Tests for the SoC's AXI control plane (Figure 5's AXI bus).

Firmware written in RISC-V assembly drives chip CSRs through the
MMIO-to-AXI doorbell bridge, the interconnect, and a register slave.
"""

import pytest

from repro.connections import Buffer
from repro.kernel import Simulator
from repro.matchlib import MemArray
from repro.soc import PrototypeSoC, RiscvCore, assemble
from repro.soc.axi_bridge import MmioAxiBridge

# Firmware helpers: the bridge window starts at MMIO_BASE + 0x100.
AXI_ASM = """
    li s1, 0x80000000
    # --- AXI read of CSR 0 (chip id) -> store to dmem[0]
    li t0, 0
    sw t0, 0x100(s1)    # ADDR = 0
    li t0, 1
    sw t0, 0x108(s1)    # CMD = read
poll1:
    lw t1, 0x10c(s1)    # STATUS
    li t2, 2
    blt t1, t2, poll1
    lw t3, 0x110(s1)    # RDATA
    sw t3, 0(x0)
    # --- AXI write 0x55 to CSR 4
    li t0, 4
    sw t0, 0x100(s1)    # ADDR = 4
    li t0, 0x55
    sw t0, 0x104(s1)    # WDATA
    li t0, 2
    sw t0, 0x108(s1)    # CMD = write
poll2:
    lw t1, 0x10c(s1)
    li t2, 2
    blt t1, t2, poll2
    ebreak
"""


def test_firmware_reads_chip_id_and_writes_csr():
    soc = PrototypeSoC(commands=[])  # command table: immediate halt
    # Replace the controller's firmware with the AXI exerciser.
    core = soc.controller.core
    core.imem = assemble(AXI_ASM)
    soc.run()
    assert core.dmem.read(0) == 0xC8AF7          # chip id read over AXI
    assert soc.csr.regs[4] == 0x55               # CSR write landed
    assert soc.axi_bridge.transactions == 2


def test_bridge_error_status_on_bad_address():
    """A read outside every slave window reports done-error status."""
    soc = PrototypeSoC(commands=[])
    core = soc.controller.core
    core.imem = assemble("""
        li s1, 0x80000000
        li t0, 0x7777
        sw t0, 0x100(s1)   # ADDR: no slave there
        li t0, 1
        sw t0, 0x108(s1)   # CMD = read
    poll:
        lw t1, 0x10c(s1)
        li t2, 2
        blt t1, t2, poll
        sw t1, 0(x0)       # store final status
        ebreak
    """)
    soc.run()
    assert core.dmem.read(0) == 3  # done-error


def test_bridge_rejects_bad_command():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    bridge = MmioAxiBridge(sim, clk)
    with pytest.raises(ValueError):
        bridge.mmio_write(0x08, 9)


def test_bridge_rejects_command_while_busy():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    bridge = MmioAxiBridge(sim, clk)
    bridge.mmio_write(0x08, 1)  # kick a read; no fabric -> stays busy
    with pytest.raises(RuntimeError):
        bridge.mmio_write(0x08, 1)


def test_bridge_standalone_with_memory_slave():
    from repro.axi import AddressRange, AxiInterconnect, AxiMemorySlave

    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    bridge = MmioAxiBridge(sim, clk)
    fabric = AxiInterconnect(sim, clk)
    fabric.connect_master(bridge.master)
    mem = MemArray(32, width=32)
    fabric.connect_slave(AxiMemorySlave(sim, clk, mem), AddressRange(0, 32))

    def driver():
        bridge.mmio_write(0x00, 5)      # ADDR
        bridge.mmio_write(0x04, 1234)   # WDATA
        bridge.mmio_write(0x08, 2)      # CMD write
        while bridge.mmio_read(0x0C) < 2:
            yield
        bridge.mmio_write(0x08, 1)      # CMD read (same address)
        while bridge.mmio_read(0x0C) < 2:
            yield

    sim.add_thread(driver(), clk, name="drv")
    sim.run(until=500_000)
    assert mem.dump(5, 1) == [1234]
    assert bridge.rdata == 1234
