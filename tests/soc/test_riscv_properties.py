"""Property-based tests: the RV32I ALU against a Python oracle."""

from hypothesis import given
from hypothesis import strategies as st

from repro.verify.profiles import property_settings

from repro.matchlib import MemArray
from repro.soc import RiscvCore, assemble

U32 = st.integers(0, 2**32 - 1)


def _s32(v):
    v &= 0xFFFFFFFF
    return v - 0x1_0000_0000 if v & 0x8000_0000 else v


ORACLES = {
    "add": lambda a, b: (a + b) & 0xFFFFFFFF,
    "sub": lambda a, b: (a - b) & 0xFFFFFFFF,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: (a << (b & 31)) & 0xFFFFFFFF,
    "srl": lambda a, b: (a & 0xFFFFFFFF) >> (b & 31),
    "sra": lambda a, b: (_s32(a) >> (b & 31)) & 0xFFFFFFFF,
    "slt": lambda a, b: 1 if _s32(a) < _s32(b) else 0,
    "sltu": lambda a, b: 1 if (a & 0xFFFFFFFF) < (b & 0xFFFFFFFF) else 0,
}


def run_alu(op, a, b):
    """Execute one R-type op on the core via real machine code."""
    source = f"""
        li t0, {a}
        li t1, {b}
        {op} a0, t0, t1
        ebreak
    """
    core = RiscvCore(imem=assemble(source), dmem=MemArray(8, width=32))
    for _ in range(20):
        if core.halted:
            break
        core.step()
    assert core.halted
    return core.regs[10]


@given(op=st.sampled_from(sorted(ORACLES)), a=U32, b=U32)
@property_settings(scale=2)
def test_alu_matches_oracle(op, a, b):
    assert run_alu(op, a, b) == ORACLES[op](a, b)


@given(a=U32, imm=st.integers(-2048, 2047))
@property_settings()
def test_addi_matches_oracle(a, imm):
    source = f"""
        li t0, {a}
        addi a0, t0, {imm}
        ebreak
    """
    core = RiscvCore(imem=assemble(source), dmem=MemArray(8, width=32))
    while not core.halted:
        core.step()
    assert core.regs[10] == (a + imm) & 0xFFFFFFFF


@given(value=U32, addr=st.integers(0, 15))
@property_settings()
def test_store_load_roundtrip_property(value, addr):
    source = f"""
        li t0, {value}
        li t1, {addr * 4}
        sw t0, 0(t1)
        lw a0, 0(t1)
        ebreak
    """
    core = RiscvCore(imem=assemble(source), dmem=MemArray(32, width=32))
    while not core.halted:
        core.step()
    assert core.regs[10] == value & 0xFFFFFFFF


@given(a=st.integers(-2**31, 2**31 - 1), b=st.integers(-2**31, 2**31 - 1))
@property_settings()
def test_branch_semantics_property(a, b):
    """blt/bge partition exactly on signed comparison."""
    source = f"""
        li t0, {a & 0xFFFFFFFF}
        li t1, {b & 0xFFFFFFFF}
        li a0, 0
        blt t0, t1, less
        li a0, 2
        j done
    less:
        li a0, 1
    done:
        ebreak
    """
    core = RiscvCore(imem=assemble(source), dmem=MemArray(8, width=32))
    while not core.halted:
        core.step()
    assert core.regs[10] == (1 if a < b else 2)
