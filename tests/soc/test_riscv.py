"""Tests for the RV32I assembler and interpreter."""

import pytest

from repro.matchlib import MemArray
from repro.soc.asm import AsmError, assemble
from repro.soc.riscv import MMIO_BASE, RiscvCore, RiscvError


def run_program(source, *, dmem_words=64, preload=None, mmio_read=None,
                mmio_write=None, max_steps=10_000):
    dmem = MemArray(dmem_words, width=32)
    if preload:
        dmem.load(preload)
    core = RiscvCore(imem=assemble(source), dmem=dmem,
                     mmio_read=mmio_read, mmio_write=mmio_write)
    for _ in range(max_steps):
        if core.halted:
            break
        core.step()
    assert core.halted, "program did not halt"
    return core, dmem


# ----------------------------------------------------------------------
# assembler
# ----------------------------------------------------------------------
def test_assemble_basic_encoding():
    words = assemble("add x1, x2, x3")
    assert words == [0x003100B3]


def test_assemble_abi_register_names():
    assert assemble("add ra, sp, gp") == assemble("add x1, x2, x3")


def test_assemble_li_small_and_large():
    core, _ = run_program("li a0, 42\nebreak")
    assert core.regs[10] == 42
    core, _ = run_program("li a0, 0x12345678\nebreak")
    assert core.regs[10] == 0x12345678
    core, _ = run_program("li a0, -1\nebreak")
    assert core.regs[10] == 0xFFFFFFFF


def test_assemble_labels_and_comments():
    source = """
        # count down from 5
        li t0, 5
        li t1, 0
    loop:
        add t1, t1, t0
        addi t0, t0, -1
        bnez t0, loop
        ebreak
    """
    core, _ = run_program(source)
    assert core.regs[6] == 15  # 5+4+3+2+1


def test_assemble_errors():
    with pytest.raises(AsmError):
        assemble("frobnicate x1, x2")
    with pytest.raises(AsmError):
        assemble("add x1, x99, x2")
    with pytest.raises(AsmError):
        assemble("addi x1, x2, 99999")  # 12-bit overflow
    with pytest.raises(AsmError):
        assemble("l: nop\nl: nop")  # duplicate label
    with pytest.raises(AsmError):
        assemble("lw x1, nonsense")


# ----------------------------------------------------------------------
# ALU and control flow
# ----------------------------------------------------------------------
def test_arithmetic_ops():
    core, _ = run_program("""
        li t0, 100
        li t1, 7
        add a0, t0, t1
        sub a1, t0, t1
        and a2, t0, t1
        or  a3, t0, t1
        xor a4, t0, t1
        ebreak
    """)
    assert core.regs[10] == 107
    assert core.regs[11] == 93
    assert core.regs[12] == 100 & 7
    assert core.regs[13] == 100 | 7
    assert core.regs[14] == 100 ^ 7


def test_shifts_logical_and_arithmetic():
    core, _ = run_program("""
        li t0, -16
        srai a0, t0, 2
        srli a1, t0, 28
        slli a2, t0, 1
        ebreak
    """)
    assert core.regs[10] == 0xFFFFFFFC  # -4
    assert core.regs[11] == 0xF
    assert core.regs[12] == 0xFFFFFFE0


def test_slt_signed_vs_unsigned():
    core, _ = run_program("""
        li t0, -1
        li t1, 1
        slt a0, t0, t1
        sltu a1, t0, t1
        slti a2, t0, 0
        sltiu a3, t0, 0
        ebreak
    """)
    assert core.regs[10] == 1   # -1 < 1 signed
    assert core.regs[11] == 0   # 0xFFFFFFFF > 1 unsigned
    assert core.regs[12] == 1
    assert core.regs[13] == 0


def test_branches_all_variants():
    core, _ = run_program("""
        li a0, 0
        li t0, 3
        li t1, 5
        blt t0, t1, l1
        ebreak
    l1: addi a0, a0, 1
        bge t1, t0, l2
        ebreak
    l2: addi a0, a0, 1
        bltu t0, t1, l3
        ebreak
    l3: addi a0, a0, 1
        beq t0, t0, l4
        ebreak
    l4: addi a0, a0, 1
        bne t0, t1, done
        ebreak
    done: addi a0, a0, 1
        ebreak
    """)
    assert core.regs[10] == 5


def test_jal_jalr_call_return():
    core, _ = run_program("""
        li a0, 1
        jal ra, func
        addi a0, a0, 100   # executed after return
        ebreak
    func:
        addi a0, a0, 10
        ret
    """)
    assert core.regs[10] == 111


def test_x0_stays_zero():
    core, _ = run_program("""
        li t0, 99
        add x0, t0, t0
        mv a0, x0
        ebreak
    """)
    assert core.regs[10] == 0


def test_lui_auipc():
    core, _ = run_program("""
        lui a0, 0x12345
        auipc a1, 0
        ebreak
    """)
    assert core.regs[10] == 0x12345000
    assert core.regs[11] == 4  # pc of auipc


# ----------------------------------------------------------------------
# memory and MMIO
# ----------------------------------------------------------------------
def test_load_store_roundtrip():
    core, dmem = run_program("""
        li t0, 0xBEEF
        li t1, 16       # byte address of word 4
        sw t0, 0(t1)
        lw a0, 0(t1)
        lw a1, -16(t1)
    data:
        ebreak
    """, preload=[7] * 8)
    assert core.regs[10] == 0xBEEF
    assert core.regs[11] == 7
    assert dmem.read(4) == 0xBEEF


def test_memory_sum_loop():
    """Sum 8 array elements from data memory."""
    source = """
        li t0, 0       # byte pointer
        li t1, 8       # count
        li a0, 0
    loop:
        lw t2, 0(t0)
        add a0, a0, t2
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, loop
        ebreak
    """
    core, _ = run_program(source, preload=[1, 2, 3, 4, 5, 6, 7, 8])
    assert core.regs[10] == 36


def test_mmio_read_write():
    log = []
    values = {MMIO_BASE + 4: 0xCAFE}

    core, _ = run_program("""
        li t0, 0x80000000
        lw a0, 4(t0)
        li t1, 123
        sw t1, 8(t0)
        ebreak
    """, mmio_read=lambda a: values.get(a, 0),
        mmio_write=lambda a, v: log.append((a, v)))
    assert core.regs[10] == 0xCAFE
    assert log == [(MMIO_BASE + 8, 123)]


def test_misaligned_access_rejected():
    with pytest.raises(RiscvError):
        run_program("""
            li t0, 2
            lw a0, 0(t0)
            ebreak
        """)


def test_illegal_instruction_rejected():
    dmem = MemArray(8, width=32)
    core = RiscvCore(imem=[0xFFFFFFFF], dmem=dmem)
    with pytest.raises(RiscvError):
        core.step()


def test_runaway_detection_in_thread():
    from repro.kernel import Simulator

    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    dmem = MemArray(8, width=32)
    core = RiscvCore(imem=assemble("loop: j loop"), dmem=dmem)
    sim.add_thread(core.run_thread(max_instructions=100), clk, name="cpu")
    with pytest.raises(RiscvError):
        sim.run(until=100_000)


def test_instructions_retired_counter():
    core, _ = run_program("li a0, 1\nli a1, 2\nebreak")
    assert core.instructions_retired == 3
