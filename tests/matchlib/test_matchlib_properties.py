"""Property-based tests on MatchLib component invariants."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.verify.profiles import property_settings

from repro.connections.packet import int_deserializer, int_serializer
from repro.matchlib import (
    ArbitratedScratchpad,
    MemArray,
    ReorderBuffer,
    RoundRobinArbiter,
    SpRequest,
    Vector,
)


# ----------------------------------------------------------------------
# reorder buffer: any completion order drains in allocation order
# ----------------------------------------------------------------------
@given(
    capacity=st.integers(1, 8),
    n_items=st.integers(1, 40),
    seed=st.integers(0, 10_000),
)
@property_settings()
def test_rob_drains_in_allocation_order(capacity, n_items, seed):
    rng = random.Random(seed)
    rob = ReorderBuffer(capacity)
    allocated = {}   # tag -> value
    next_value = 0
    drained = []
    while len(drained) < n_items:
        actions = []
        if rob.can_allocate and next_value < n_items:
            actions.append("alloc")
        if allocated:
            actions.append("write")
        if rob.head_ready:
            actions.append("read")
        action = rng.choice(actions)
        if action == "alloc":
            allocated[rob.allocate()] = next_value
            next_value += 1
        elif action == "write":
            tag = rng.choice(sorted(allocated))
            rob.write(tag, allocated.pop(tag))
        else:
            drained.append(rob.read())
    assert drained == list(range(n_items))


# ----------------------------------------------------------------------
# arbitrated scratchpad: equivalent to a flat memory, and fair
# ----------------------------------------------------------------------
@given(
    n_banks=st.integers(1, 4),
    ops=st.lists(st.tuples(st.booleans(), st.integers(0, 31),
                           st.integers(0, 2**16)), min_size=1, max_size=60),
)
@property_settings()
def test_scratchpad_equivalent_to_flat_memory(n_banks, ops):
    sp = ArbitratedScratchpad(n_requesters=1, n_banks=n_banks,
                              bank_entries=-(-32 // n_banks))
    flat = [0] * sp.entries  # entries rounds up to a bank multiple
    for is_write, addr, data in ops:
        if addr >= sp.entries:
            continue
        submitted = sp.submit(SpRequest(0, is_write, addr, data))
        assert submitted
        responses = []
        while not responses:
            responses = sp.tick()
        (rsp,) = responses
        if is_write:
            flat[addr] = data
        else:
            assert rsp.data == flat[addr]
    assert sp.dump(0, sp.entries) == flat[:sp.entries]


@given(n=st.integers(2, 8), rounds=st.integers(4, 40))
@property_settings()
def test_round_robin_long_run_fairness(n, rounds):
    """Under saturation, grant counts differ by at most one per requester."""
    arb = RoundRobinArbiter(n)
    for _ in range(rounds * n):
        arb.pick([True] * n)
    assert max(arb.grants) - min(arb.grants) <= 1


# ----------------------------------------------------------------------
# serializer/deserializer: pure-function roundtrip across widths
# ----------------------------------------------------------------------
@given(
    width=st.integers(1, 64),
    flit_width=st.integers(1, 64),
    value=st.integers(min_value=0),
)
@property_settings(scale=1.5)
def test_serializer_roundtrip_property(width, flit_width, value):
    if flit_width > width:
        flit_width = width
    value &= (1 << width) - 1
    ser = int_serializer(width, flit_width)
    deser = int_deserializer(width, flit_width)
    flits = ser(value)
    assert len(flits) == -(-width // flit_width)
    assert all(0 <= f < (1 << flit_width) for f in flits)
    assert deser(flits) == value


# ----------------------------------------------------------------------
# Vector algebra laws
# ----------------------------------------------------------------------
@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=16),
       st.integers(-50, 50))
@property_settings()
def test_vector_scale_distributes(data, k):
    v = Vector(data)
    assert v.scale(k).reduce_sum() == v.reduce_sum() * k


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=16))
@property_settings()
def test_vector_dot_self_nonnegative(data):
    v = Vector(data)
    assert v.dot(v) >= 0
    assert v.dot(v) == sum(x * x for x in data)


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=12),
       st.lists(st.integers(-100, 100), min_size=1, max_size=12))
@property_settings()
def test_vector_dot_commutative(a, b):
    n = min(len(a), len(b))
    va, vb = Vector(a[:n]), Vector(b[:n])
    assert va.dot(vb) == vb.dot(va)


# ----------------------------------------------------------------------
# MemArray burst laws
# ----------------------------------------------------------------------
@given(
    base=st.integers(0, 20),
    data=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=12),
)
@property_settings()
def test_mem_array_burst_write_read_roundtrip(base, data):
    mem = MemArray(32, width=32)
    if base + len(data) > 32:
        base = 32 - len(data)
    mem.write_burst(base, data)
    assert mem.read_burst(base, len(data)) == data
