"""Tests for MatchLib untimed functions and classes (Table 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.verify.profiles import property_settings

from repro.matchlib import (
    Fifo,
    FifoError,
    FixedPriorityArbiter,
    MemArray,
    MemError,
    ReorderBuffer,
    RobError,
    RoundRobinArbiter,
    Vector,
    binary_to_gray,
    crossbar_dst_loop,
    crossbar_src_loop,
    gray_to_binary,
    is_one_hot,
    one_hot_decode,
    one_hot_encode,
    permute,
    priority_encode,
)


# ----------------------------------------------------------------------
# crossbar functions (the section 2.4 case study semantics)
# ----------------------------------------------------------------------
def test_dst_loop_permutation():
    out = crossbar_dst_loop(["a", "b", "c", "d"], [3, 2, 1, 0])
    assert out == ["d", "c", "b", "a"]


def test_dst_loop_fanout_is_legal():
    out = crossbar_dst_loop(["a", "b"], [0, 0])
    assert out == ["a", "a"]


def test_src_loop_permutation_matches_dst_loop():
    inputs = list(range(8))
    perm = [3, 1, 7, 0, 5, 2, 6, 4]
    inverse = [perm.index(i) for i in range(8)]
    assert crossbar_src_loop(inputs, perm) == crossbar_dst_loop(inputs, inverse)


def test_src_loop_conflict_highest_index_wins():
    """The priority semantics that force HLS to build priority decoders."""
    out = crossbar_src_loop(["a", "b", "c"], [0, 0, 2])
    assert out == ["b", None, "c"]  # src 1 beats src 0 for output 0


def test_crossbar_validation():
    with pytest.raises(ValueError):
        crossbar_dst_loop([1, 2], [0])
    with pytest.raises(ValueError):
        crossbar_dst_loop([1, 2], [0, 5])
    with pytest.raises(ValueError):
        crossbar_src_loop([1, 2], [0, 9])
    with pytest.raises(ValueError):
        permute([1, 2, 3], [0, 0, 1])


@given(st.permutations(list(range(8))))
@property_settings()
def test_permute_property(perm):
    inputs = [f"v{i}" for i in range(8)]
    out = permute(inputs, perm)
    for dst in range(8):
        assert out[dst] == inputs[perm[dst]]


# ----------------------------------------------------------------------
# encoders / decoders
# ----------------------------------------------------------------------
def test_one_hot_roundtrip():
    for width in (1, 4, 32):
        for i in range(width):
            assert one_hot_decode(one_hot_encode(i, width)) == i


def test_one_hot_validation():
    with pytest.raises(ValueError):
        one_hot_encode(4, 4)
    with pytest.raises(ValueError):
        one_hot_decode(0b0110)
    with pytest.raises(ValueError):
        one_hot_decode(0)


def test_is_one_hot():
    assert is_one_hot(1) and is_one_hot(8)
    assert not is_one_hot(0) and not is_one_hot(3)


def test_priority_encode():
    assert priority_encode(0) == -1
    assert priority_encode(0b1000) == 3
    assert priority_encode(0b1010) == 1  # least-significant wins


@given(st.integers(min_value=0, max_value=2**16 - 1))
def test_gray_code_roundtrip(v):
    assert gray_to_binary(binary_to_gray(v)) == v


@given(st.integers(min_value=0, max_value=2**16 - 2))
def test_gray_code_adjacent_values_differ_in_one_bit(v):
    diff = binary_to_gray(v) ^ binary_to_gray(v + 1)
    assert is_one_hot(diff)


# ----------------------------------------------------------------------
# Fifo
# ----------------------------------------------------------------------
def test_fifo_ordering_and_bounds():
    f = Fifo(capacity=3)
    assert f.empty and not f.full
    for i in range(3):
        f.push(i)
    assert f.full and f.free == 0
    with pytest.raises(FifoError):
        f.push(99)
    assert [f.pop() for _ in range(3)] == [0, 1, 2]
    with pytest.raises(FifoError):
        f.pop()


def test_fifo_nb_variants():
    f = Fifo(capacity=1)
    assert f.push_nb("x") is True
    assert f.push_nb("y") is False
    assert f.pop_nb() == (True, "x")
    assert f.pop_nb() == (False, None)


def test_fifo_peek_and_stats():
    f = Fifo()
    f.push(1)
    f.push(2)
    assert f.peek() == 1
    assert f.size == 2
    assert f.peak_occupancy == 2
    assert f.total_pushed == 2
    assert list(f) == [1, 2]
    f.clear()
    assert f.empty
    with pytest.raises(FifoError):
        f.peek()


def test_fifo_unbounded():
    f = Fifo()
    for i in range(1000):
        f.push(i)
    assert f.free is None and not f.full


def test_fifo_capacity_validation():
    with pytest.raises(ValueError):
        Fifo(capacity=0)


# ----------------------------------------------------------------------
# arbiters
# ----------------------------------------------------------------------
def test_round_robin_rotates_fairly():
    arb = RoundRobinArbiter(4)
    picks = [arb.pick([True] * 4) for _ in range(8)]
    assert picks == [0, 1, 2, 3, 0, 1, 2, 3]
    assert arb.grants == [2, 2, 2, 2]


def test_round_robin_skips_idle_requesters():
    arb = RoundRobinArbiter(4)
    assert arb.pick([False, True, False, True]) == 1
    assert arb.pick([False, True, False, True]) == 3
    assert arb.pick([False, True, False, True]) == 1


def test_round_robin_none_when_idle():
    arb = RoundRobinArbiter(3)
    assert arb.pick([False, False, False]) is None


def test_round_robin_mask_interface():
    arb = RoundRobinArbiter(4)
    assert arb.pick_mask(0b1010) == 1
    assert arb.pick_mask(0b1010) == 3


def test_round_robin_validation():
    with pytest.raises(ValueError):
        RoundRobinArbiter(0)
    arb = RoundRobinArbiter(2)
    with pytest.raises(ValueError):
        arb.pick([True])


@given(st.lists(st.booleans(), min_size=1, max_size=16))
def test_round_robin_grant_is_asserted_requester(requests):
    arb = RoundRobinArbiter(len(requests))
    pick = arb.pick(requests)
    if any(requests):
        assert requests[pick]
    else:
        assert pick is None


def test_fixed_priority_starves_high_indices():
    arb = FixedPriorityArbiter(3)
    for _ in range(5):
        assert arb.pick([True, True, True]) == 0
    assert arb.grants == [5, 0, 0]


# ----------------------------------------------------------------------
# MemArray
# ----------------------------------------------------------------------
def test_mem_array_read_write():
    mem = MemArray(16, width=8)
    mem.write(3, 0x1FF)  # masked to 8 bits
    assert mem.read(3) == 0xFF
    assert mem.reads == 1 and mem.writes == 1


def test_mem_array_bounds():
    mem = MemArray(4)
    with pytest.raises(MemError):
        mem.read(4)
    with pytest.raises(MemError):
        mem.write(-1, 0)
    with pytest.raises(MemError):
        mem.read_burst(2, 3)
    with pytest.raises(MemError):
        mem.write_burst(3, [1, 2])


def test_mem_array_burst_roundtrip():
    mem = MemArray(8)
    mem.write_burst(2, [10, 11, 12])
    assert mem.read_burst(2, 3) == [10, 11, 12]


def test_mem_array_load_dump_bypass_counters():
    mem = MemArray(4, width=16)
    mem.load([1, 2, 3, 4])
    assert mem.dump() == [1, 2, 3, 4]
    assert mem.reads == 0 and mem.writes == 0


def test_mem_array_validation():
    with pytest.raises(ValueError):
        MemArray(0)
    with pytest.raises(ValueError):
        MemArray(4, width=0)


# ----------------------------------------------------------------------
# Vector
# ----------------------------------------------------------------------
def test_vector_elementwise_ops():
    a = Vector([1, 2, 3])
    b = Vector([10, 20, 30])
    assert (a + b).to_list() == [11, 22, 33]
    assert (b - a).to_list() == [9, 18, 27]
    assert (a * b).to_list() == [10, 40, 90]
    assert a.scale(2).to_list() == [2, 4, 6]


def test_vector_mac_and_reductions():
    acc = Vector([1, 1, 1])
    out = acc.mac(Vector([2, 3, 4]), Vector([5, 6, 7]))
    assert out.to_list() == [11, 19, 29]
    assert out.reduce_sum() == 59
    assert out.reduce_max() == 29
    assert out.reduce_min() == 11
    assert Vector([1, 2]).dot(Vector([3, 4])) == 11


def test_vector_splat_and_container_protocol():
    v = Vector.splat(7, 4)
    assert len(v) == 4 and v[2] == 7
    v[2] = 9
    assert v.to_list() == [7, 7, 9, 7]
    assert Vector([1, 2]) == Vector([1, 2])
    assert Vector([1, 2]) != Vector([2, 1])


def test_vector_validation():
    with pytest.raises(ValueError):
        Vector([])
    with pytest.raises(ValueError):
        Vector.splat(0, 0)
    with pytest.raises(ValueError):
        Vector([1, 2]) + Vector([1, 2, 3])


def test_vector_fp_lanes():
    from repro.matchlib import FP32, fp_mul_add

    spec = FP32
    a = Vector([spec.encode(x) for x in (1.5, 2.5)])
    b = Vector([spec.encode(x) for x in (2.0, 4.0)])
    prod = a.fp_mul(b, spec)
    assert [spec.decode(x) for x in prod] == [3.0, 10.0]
    total = a.fp_dot(b, spec)
    assert spec.decode(total) == 13.0
    acc = Vector([spec.zero(), spec.zero()])
    assert [spec.decode(x) for x in acc.fp_mac(a, b, spec)] == [3.0, 10.0]


# ----------------------------------------------------------------------
# ReorderBuffer
# ----------------------------------------------------------------------
def test_rob_out_of_order_completion_in_order_drain():
    rob = ReorderBuffer(4)
    t0, t1, t2 = rob.allocate(), rob.allocate(), rob.allocate()
    rob.write(t2, "c")
    rob.write(t0, "a")
    assert rob.head_ready
    assert rob.read() == "a"
    assert not rob.head_ready  # t1 not yet written
    rob.write(t1, "b")
    assert rob.read() == "b"
    assert rob.read() == "c"
    assert len(rob) == 0


def test_rob_wraparound():
    rob = ReorderBuffer(2)
    for round_ in range(5):
        a, b = rob.allocate(), rob.allocate()
        assert not rob.can_allocate
        rob.write(b, round_ * 10 + 1)
        rob.write(a, round_ * 10)
        assert rob.read() == round_ * 10
        assert rob.read() == round_ * 10 + 1


def test_rob_error_paths():
    rob = ReorderBuffer(2)
    with pytest.raises(RobError):
        rob.read()
    tag = rob.allocate()
    with pytest.raises(RobError):
        rob.write(5, "x")  # out of range
    with pytest.raises(RobError):
        rob.write((tag + 1) % 2, "x")  # not allocated
    rob.write(tag, "x")
    with pytest.raises(RobError):
        rob.write(tag, "y")  # double write
    rob.allocate()
    with pytest.raises(RobError):
        rob.allocate()  # full
    assert rob.read_nb() == (True, "x")
    assert rob.read_nb() == (False, None)


def test_rob_validation():
    with pytest.raises(ValueError):
        ReorderBuffer(0)
