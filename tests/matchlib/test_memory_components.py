"""Tests for arbitrated scratchpad, cache, and their clocked modules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.verify.profiles import property_settings

from repro.connections import Buffer, In, Out
from repro.kernel import Simulator
from repro.matchlib import (
    ArbitratedScratchpad,
    Cache,
    CacheModule,
    CacheRequest,
    MemArray,
    ScratchpadModule,
    SpRequest,
)


# ----------------------------------------------------------------------
# ArbitratedScratchpad (untimed, cycle-stepped)
# ----------------------------------------------------------------------
def test_scratchpad_bank_mapping():
    sp = ArbitratedScratchpad(n_requesters=2, n_banks=4, bank_entries=8)
    assert sp.entries == 32
    assert sp.bank_of(0) == (0, 0)
    assert sp.bank_of(5) == (1, 1)
    with pytest.raises(ValueError):
        sp.bank_of(32)


def test_scratchpad_write_then_read():
    sp = ArbitratedScratchpad(n_requesters=1, n_banks=2, bank_entries=4)
    assert sp.submit(SpRequest(0, True, 3, 42))
    responses = sp.tick()
    assert len(responses) == 1 and responses[0].requester == 0
    sp.submit(SpRequest(0, False, 3))
    responses = sp.tick()
    assert responses[0].data == 42


def test_scratchpad_conflict_free_lanes_complete_same_cycle():
    sp = ArbitratedScratchpad(n_requesters=4, n_banks=4, bank_entries=4)
    sp.load(range(16))
    for lane in range(4):
        sp.submit(SpRequest(lane, False, lane))  # addr%4 == lane: no conflicts
    responses = sp.tick()
    assert len(responses) == 4
    assert sorted(r.data for r in responses) == [0, 1, 2, 3]
    assert sp.conflict_cycles == 0


def test_scratchpad_bank_conflicts_serialize():
    sp = ArbitratedScratchpad(n_requesters=4, n_banks=4, bank_entries=4)
    sp.load(range(16))
    for lane in range(4):
        sp.submit(SpRequest(lane, False, 0))  # all hit bank 0
    total = []
    cycles = 0
    while len(total) < 4:
        total.extend(sp.tick())
        cycles += 1
    assert cycles == 4
    assert sp.conflict_cycles > 0


def test_scratchpad_round_robin_fairness_under_conflict():
    sp = ArbitratedScratchpad(n_requesters=2, n_banks=1, bank_entries=2)
    order = []
    for _ in range(4):
        sp.submit(SpRequest(0, False, 0))
        sp.submit(SpRequest(1, False, 0))
        order.append(sp.tick()[0].requester)
        order.append(sp.tick()[0].requester)
    assert order.count(0) == order.count(1) == 4


def test_scratchpad_load_dump_roundtrip():
    sp = ArbitratedScratchpad(n_requesters=1, n_banks=3, bank_entries=5)
    sp.load(range(100, 115))
    assert sp.dump(0, 15) == list(range(100, 115))


def test_scratchpad_validation():
    with pytest.raises(ValueError):
        ArbitratedScratchpad(n_requesters=0, n_banks=1, bank_entries=4)
    sp = ArbitratedScratchpad(n_requesters=1, n_banks=1, bank_entries=4)
    with pytest.raises(ValueError):
        sp.submit(SpRequest(5, False, 0))
    with pytest.raises(ValueError):
        sp.submit(SpRequest(0, False, 99))


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def make_cache(**kw):
    mem = MemArray(1024, width=32)
    mem.load(range(1024))
    defaults = dict(capacity_words=64, words_per_line=4, associativity=2)
    defaults.update(kw)
    return Cache(mem, **defaults), mem


def test_cache_cold_miss_then_hit():
    cache, _ = make_cache()
    data, hit = cache.read(10)
    assert (data, hit) == (10, False)
    data, hit = cache.read(10)
    assert (data, hit) == (10, True)
    # Same line: spatial locality hit.
    data, hit = cache.read(8)
    assert (data, hit) == (8, True)
    assert cache.hits == 2 and cache.misses == 1


def test_cache_write_back_on_eviction():
    cache, mem = make_cache(capacity_words=8, words_per_line=4, associativity=1)
    # 2 sets, direct mapped. Lines 0 and 2 map to set 0.
    cache.write(0, 999)
    assert mem.dump(0, 1) == [0]  # dirty, not yet written back
    cache.read(16)  # line 4 -> set 0: evicts dirty line 0
    assert cache.writebacks == 1
    assert mem.dump(0, 1) == [999]


def test_cache_lru_replacement():
    cache, _ = make_cache(capacity_words=16, words_per_line=4, associativity=2)
    # 2 sets; addresses 0, 16, 32 all map to set 0.
    cache.read(0)
    cache.read(16)
    cache.read(0)   # touch line 0 -> line 16 is LRU
    cache.read(32)  # evicts 16
    _, hit = cache.read(0)
    assert hit
    _, hit = cache.read(16)
    assert not hit


def test_cache_flush_writes_all_dirty_lines():
    cache, mem = make_cache()
    for addr in (0, 4, 100):
        cache.write(addr, addr + 1000)
    flushed = cache.flush()
    assert flushed == 3
    assert mem.dump(100, 1) == [1100]
    assert cache.flush() == 0  # idempotent


def test_cache_hit_rate_statistic():
    cache, _ = make_cache()
    for _ in range(9):
        cache.read(0)
    assert cache.hit_rate == pytest.approx(8 / 9)


def test_cache_validation():
    mem = MemArray(64)
    with pytest.raises(ValueError):
        Cache(mem, capacity_words=7, words_per_line=4, associativity=2)
    with pytest.raises(ValueError):
        Cache(mem, capacity_words=8, words_per_line=0, associativity=2)


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 255),
                          st.integers(0, 2**31)), min_size=1, max_size=200))
@property_settings()
def test_cache_coherence_property(ops):
    """Cache+backstore always agree with a flat reference memory."""
    mem = MemArray(256, width=32)
    cache = Cache(mem, capacity_words=32, words_per_line=4, associativity=2)
    reference = [0] * 256
    for is_write, addr, data in ops:
        if is_write:
            cache.write(addr, data)
            reference[addr] = data & 0xFFFFFFFF
        else:
            got, _ = cache.read(addr)
            assert got == reference[addr]
    cache.flush()
    assert mem.dump() == reference


# ----------------------------------------------------------------------
# CacheModule (clocked)
# ----------------------------------------------------------------------
def test_cache_module_latencies():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    cache, _ = make_cache()
    mod = CacheModule(sim, clk, cache, hit_latency=1, miss_latency=10)
    req_ch = Buffer(sim, clk, capacity=2, name="req")
    rsp_ch = Buffer(sim, clk, capacity=2, name="rsp")
    mod.req.bind(req_ch)
    mod.rsp.bind(rsp_ch)
    src, dst = Out(req_ch), In(rsp_ch)
    log = []

    def driver():
        for addr in (0, 0):
            yield from src.push(CacheRequest(False, addr))
        start = clk.cycles
        for _ in range(2):
            rsp = yield from dst.pop()
            log.append((rsp.hit, clk.cycles - start))

    sim.add_thread(driver(), clk, name="drv")
    sim.run(until=100_000)
    assert [h for h, _ in log] == [False, True]
    # The miss took noticeably longer than the following hit.
    miss_time = log[0][1]
    hit_time = log[1][1] - log[0][1]
    assert miss_time > hit_time


def test_cache_module_validation():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    cache, _ = make_cache()
    with pytest.raises(ValueError):
        CacheModule(sim, clk, cache, hit_latency=2, miss_latency=1)


# ----------------------------------------------------------------------
# ScratchpadModule (clocked)
# ----------------------------------------------------------------------
def test_scratchpad_module_vector_access():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mod = ScratchpadModule(sim, clk, n_lanes=4, n_banks=4, bank_entries=16)
    req_ch = Buffer(sim, clk, capacity=2, name="req")
    rsp_ch = Buffer(sim, clk, capacity=2, name="rsp")
    mod.req.bind(req_ch)
    mod.rsp.bind(rsp_ch)
    src, dst = Out(req_ch), In(rsp_ch)
    results = {}

    def driver():
        # Write lanes 0..3 to addresses 0..3 (conflict-free).
        writes = [SpRequest(i, True, i, 100 + i) for i in range(4)]
        yield from src.push(writes)
        yield from dst.pop()
        # Read them back, all from bank 0 (conflicts serialize inside).
        reads = [SpRequest(i, False, i) for i in range(4)]
        yield from src.push(reads)
        rsp = yield from dst.pop()
        results["data"] = [r.data for r in rsp]

    sim.add_thread(driver(), clk, name="drv")
    sim.run(until=100_000)
    assert results["data"] == [100, 101, 102, 103]
    assert mod.requests_served == 2


def test_scratchpad_module_inactive_lanes():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mod = ScratchpadModule(sim, clk, n_lanes=2, n_banks=2, bank_entries=8)
    mod.core.load(range(16))
    req_ch = Buffer(sim, clk, capacity=2, name="req")
    rsp_ch = Buffer(sim, clk, capacity=2, name="rsp")
    mod.req.bind(req_ch)
    mod.rsp.bind(rsp_ch)
    src, dst = Out(req_ch), In(rsp_ch)
    results = {}

    def driver():
        yield from src.push([None, SpRequest(1, False, 5)])
        rsp = yield from dst.pop()
        results["rsp"] = rsp

    sim.add_thread(driver(), clk, name="drv")
    sim.run(until=10_000)
    assert results["rsp"][0] is None
    assert results["rsp"][1].data == 5


# ----------------------------------------------------------------------
# replacement policies
# ----------------------------------------------------------------------
def test_cache_policy_validation():
    mem = MemArray(64)
    with pytest.raises(ValueError):
        Cache(mem, capacity_words=16, words_per_line=4, associativity=2,
              policy="mru")


def test_fifo_policy_ignores_reuse():
    """FIFO evicts the oldest *fill* even if it was just reused."""
    mem = MemArray(1024, width=32)
    cache = Cache(mem, capacity_words=16, words_per_line=4, associativity=2,
                  policy="fifo")
    # Set 0 holds lines at word addresses 0, 16, 32, ...
    cache.read(0)    # fill A
    cache.read(16)   # fill B
    cache.read(0)    # reuse A (FIFO must not refresh it)
    cache.read(32)   # needs a victim: FIFO evicts A, LRU would evict B
    _, hit_b = cache.read(16)
    _, hit_a = cache.read(0)
    assert hit_b        # B survived
    assert not hit_a    # A was evicted despite the recent reuse


def test_lru_policy_respects_reuse():
    mem = MemArray(1024, width=32)
    cache = Cache(mem, capacity_words=16, words_per_line=4, associativity=2,
                  policy="lru")
    cache.read(0)
    cache.read(16)
    cache.read(0)    # refresh A
    cache.read(32)   # evicts B
    _, hit_a = cache.read(0)
    assert hit_a


def test_random_policy_functionally_correct():
    """Random replacement still keeps cache/backstore coherent."""
    mem = MemArray(256, width=32)
    cache = Cache(mem, capacity_words=32, words_per_line=4, associativity=2,
                  policy="random", seed=3)
    reference = [0] * 256
    import random as _r
    rng = _r.Random(9)
    for _ in range(300):
        addr = rng.randrange(256)
        if rng.random() < 0.5:
            val = rng.randrange(1 << 31)
            cache.write(addr, val)
            reference[addr] = val
        else:
            got, _hit = cache.read(addr)
            assert got == reference[addr]
    cache.flush()
    assert mem.dump() == reference


def test_lru_beats_fifo_on_looping_workload():
    """Design-choice ablation: a loop slightly larger than one way
    favors reuse-aware replacement."""
    def hit_rate(policy):
        mem = MemArray(4096, width=32)
        cache = Cache(mem, capacity_words=64, words_per_line=4,
                      associativity=4, policy=policy, seed=1)
        import random as _r
        rng = _r.Random(2)
        # Mostly-hot working set with occasional streaming interference.
        for _ in range(2000):
            if rng.random() < 0.8:
                cache.read(rng.randrange(48))     # hot set: fits
            else:
                cache.read(256 + rng.randrange(1024))  # streaming
        return cache.hit_rate

    assert hit_rate("lru") > hit_rate("fifo")
