"""Tests for Serializer/Deserializer and the arbitrated crossbar models."""

import random

import pytest

from repro.connections import (
    Buffer,
    In,
    Out,
    SignalInterface,
    stream_consumer,
    stream_producer,
)
from repro.kernel import Simulator
from repro.matchlib import (
    ArbitratedCrossbarKernel,
    ArbitratedCrossbarModule,
    ArbitratedCrossbarRTL,
    ArbitratedCrossbarSA,
    Deserializer,
    Serializer,
)


# ----------------------------------------------------------------------
# Serializer / Deserializer
# ----------------------------------------------------------------------
def test_serdes_roundtrip():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    ser = Serializer(sim, clk, width=32, flit_width=8)
    des = Deserializer(sim, clk, width=32, flit_width=8)
    wide_in = Buffer(sim, clk, capacity=2, name="wi")
    narrow = Buffer(sim, clk, capacity=2, name="na")
    wide_out = Buffer(sim, clk, capacity=2, name="wo")
    ser.wide_in.bind(wide_in)
    ser.narrow_out.bind(narrow)
    des.narrow_in.bind(narrow)
    des.wide_out.bind(wide_out)
    src, dst = Out(wide_in), In(wide_out)
    messages = [0xDEADBEEF, 0x12345678, 0, 0xFFFFFFFF]
    received = []

    def producer():
        for m in messages:
            yield from src.push(m)

    def consumer():
        for _ in messages:
            received.append((yield from dst.pop()))

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=100_000)
    assert received == messages
    assert ser.messages == 4 and des.messages == 4
    assert ser.factor == des.factor == 4


def test_serdes_validation():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with pytest.raises(ValueError):
        Serializer(sim, clk, width=4, flit_width=8)
    with pytest.raises(ValueError):
        Deserializer(sim, clk, width=4, flit_width=8)


# ----------------------------------------------------------------------
# ArbitratedCrossbarKernel
# ----------------------------------------------------------------------
def test_kernel_routes_and_arbitrates():
    k = ArbitratedCrossbarKernel(2, 2)
    assert k.accept(0, (1, "a"))
    assert k.accept(1, (1, "b"))  # both target output 1
    grants = k.arbitrate([True, True])
    assert len(grants) == 1  # one winner per output per cycle
    grants2 = k.arbitrate([True, True])
    assert len(grants2) == 1
    sent = {grants[0][1][1], grants2[0][1][1]}
    assert sent == {"a", "b"}


def test_kernel_respects_output_free_mask():
    k = ArbitratedCrossbarKernel(2, 2)
    k.accept(0, (0, "x"))
    assert k.arbitrate([False, True]) == []
    assert k.arbitrate([True, True]) == [(0, (0, "x"))]


def test_kernel_validation():
    with pytest.raises(ValueError):
        ArbitratedCrossbarKernel(0, 2)
    k = ArbitratedCrossbarKernel(2, 2)
    with pytest.raises(ValueError):
        k.accept(0, (5, "bad dst"))


# ----------------------------------------------------------------------
# crossbar timing models: functional equivalence
# ----------------------------------------------------------------------
def traffic(n_ports, per_port, seed=0):
    rng = random.Random(seed)
    return [
        [(rng.randrange(n_ports), f"p{port}m{i}") for i in range(per_port)]
        for port in range(n_ports)
    ]


def run_module_crossbar(n_ports, per_port, seed=0):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    xbar = ArbitratedCrossbarModule(sim, clk, n_ports, n_ports)
    in_chans = [Buffer(sim, clk, capacity=2, name=f"i{i}") for i in range(n_ports)]
    out_chans = [Buffer(sim, clk, capacity=2, name=f"o{i}") for i in range(n_ports)]
    for i in range(n_ports):
        xbar.ins[i].bind(in_chans[i])
        xbar.outs[i].bind(out_chans[i])
    msgs = traffic(n_ports, per_port, seed)
    total = n_ports * per_port
    received = [[] for _ in range(n_ports)]
    counter = {"n": 0, "cycles": 0}

    def producer(i):
        src = Out(in_chans[i])
        for m in msgs[i]:
            yield from src.push(m)

    def consumer(o):
        dst = In(out_chans[o])
        while counter["n"] < total:
            ok, msg = dst.pop_nb()
            if ok:
                received[o].append(msg)
                counter["n"] += 1
                counter["cycles"] = clk.cycles
            yield

    for i in range(n_ports):
        sim.add_thread(producer(i), clk, name=f"p{i}")
        sim.add_thread(consumer(i), clk, name=f"c{i}")
    sim.run(until=total * 4000)
    return msgs, received, counter


def test_module_crossbar_delivers_everything_to_right_output():
    msgs, received, counter = run_module_crossbar(4, 20)
    sent = [m for port in msgs for m in port]
    got = [m for out in received for m in out]
    assert sorted(map(str, got)) == sorted(map(str, sent))
    for o, out in enumerate(received):
        assert all(dst == o for dst, _ in out)


def test_module_crossbar_preserves_per_input_order():
    msgs, received, _ = run_module_crossbar(4, 20, seed=3)
    for i in range(4):
        for o in range(4):
            sent_io = [m for m in msgs[i] if m[0] == o]
            got_io = [m for m in received[o] if m[1].startswith(f"p{i}m")]
            assert got_io == sent_io


def run_rtl_crossbar(n_ports, per_port, seed=0):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    xbar = ArbitratedCrossbarRTL(sim, clk, n_ports, n_ports)
    msgs = traffic(n_ports, per_port, seed)
    sinks = [[] for _ in range(n_ports)]
    for i in range(n_ports):
        sim.add_thread(stream_producer(xbar.enq[i], msgs[i]), clk, name=f"p{i}")
        sim.add_thread(stream_consumer(xbar.deq[i], sinks[i]), clk, name=f"c{i}")
    total = n_ports * per_port
    sim.run(until=total * 4000)
    return msgs, sinks, xbar


def test_rtl_crossbar_functional_equivalence_with_module():
    msgs_m, received_m, _ = run_module_crossbar(4, 25, seed=7)
    msgs_r, sinks_r, _ = run_rtl_crossbar(4, 25, seed=7)
    assert msgs_m == msgs_r
    for o in range(4):
        # Same multiset per output (arbitration order may differ).
        assert sorted(map(str, received_m[o])) == sorted(map(str, sinks_r[o]))


def test_sa_crossbar_functional_but_slower():
    n, per_port = 4, 10
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    xbar = ArbitratedCrossbarSA(sim, clk, n, n)
    msgs = traffic(n, per_port, seed=1)
    sinks = [[] for _ in range(n)]
    for i in range(n):
        sim.add_thread(stream_producer(xbar.enq[i], msgs[i]), clk, name=f"p{i}")
        sim.add_thread(stream_consumer(xbar.deq[i], sinks[i]), clk, name=f"c{i}")
    total = n * per_port
    sim.run(until=total * 10_000)
    got = [m for s in sinks for m in s]
    sent = [m for port in msgs for m in port]
    assert sorted(map(str, got)) == sorted(map(str, sent))
