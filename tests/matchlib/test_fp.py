"""Bit-accurate floating-point tests, including a Fraction-exact oracle."""

import math
import struct
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.verify.profiles import property_settings

from repro.matchlib import BF16, FP16, FP32, FloatSpec, fp_add, fp_mul, fp_mul_add

TINY = FloatSpec(exp_bits=4, man_bits=3)  # exhaustively testable format


# ----------------------------------------------------------------------
# format plumbing
# ----------------------------------------------------------------------
def test_spec_widths():
    assert FP32.width == 32
    assert FP16.width == 16
    assert BF16.width == 16
    assert FP32.bias == 127
    assert FP16.bias == 15


def test_spec_validation():
    with pytest.raises(ValueError):
        FloatSpec(exp_bits=1, man_bits=3)
    with pytest.raises(ValueError):
        FloatSpec(exp_bits=4, man_bits=0)


def test_special_value_predicates():
    for spec in (FP16, FP32, TINY):
        assert spec.is_inf(spec.inf())
        assert spec.is_inf(spec.inf(1))
        assert spec.is_nan(spec.nan())
        assert spec.is_zero(spec.zero())
        assert spec.is_zero(spec.zero(1))
        assert not spec.is_nan(spec.inf())
        assert not spec.is_inf(spec.nan())


def test_decode_special_values():
    assert FP32.decode(FP32.inf()) == float("inf")
    assert FP32.decode(FP32.inf(1)) == float("-inf")
    assert math.isnan(FP32.decode(FP32.nan()))
    assert FP32.decode(FP32.zero()) == 0.0


def fp32_bits(x: float) -> int:
    return struct.unpack("<I", struct.pack("<f", x))[0]


@pytest.mark.parametrize("value", [
    0.0, 1.0, -1.0, 0.5, 2.0, 3.14159, -2.71828, 1e-30, 1e30,
    1.1754943508222875e-38,   # smallest normal
    1e-40,                    # subnormal
    3.4028234663852886e38,    # largest normal
])
def test_fp32_encode_matches_ieee754(value):
    assert FP32.encode(value) == fp32_bits(value)


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
@property_settings(scale=3)
def test_fp32_encode_decode_roundtrip_hypothesis(value):
    bits = FP32.encode(value)
    assert bits == fp32_bits(value)
    assert FP32.decode(bits) == value


# ----------------------------------------------------------------------
# exact oracle on the tiny format
# ----------------------------------------------------------------------
def _tiny_exact(bits: int):
    """Decode a TINY pattern to an exact Fraction (or a special marker)."""
    sign, exp, man = TINY.fields(bits)
    if exp == TINY.exp_max:
        return "nan" if man else ("-inf" if sign else "+inf")
    if exp == 0:
        frac = Fraction(man, 1) * Fraction(2) ** (1 - TINY.bias - TINY.man_bits)
    else:
        frac = Fraction(man + 8, 1) * Fraction(2) ** (exp - TINY.bias - TINY.man_bits)
    return -frac if sign else frac


def _tiny_round(value: Fraction, sign_hint: int) -> int:
    """Round an exact Fraction to TINY with RNE (the oracle)."""
    if value == 0:
        return TINY.zero(0)
    sign = 1 if value < 0 else 0
    mag = abs(value)
    # Find all representable magnitudes (finite TINY values are few).
    reps = sorted({abs(_tiny_exact(b)) for b in range(1 << TINY.width)
                   if isinstance(_tiny_exact(b), Fraction)})
    max_rep = reps[-1]
    # IEEE overflow rule: round to inf past max + 1/2 ulp.
    ulp = max_rep - reps[-2]
    if mag >= max_rep + ulp / 2:
        return TINY.inf(sign)
    # Nearest representable; ties to even mantissa.
    below = max((r for r in reps if r <= mag), default=Fraction(0))
    above = min((r for r in reps if r >= mag), default=max_rep)
    if mag - below < above - mag:
        choice = below
    elif above - mag < mag - below:
        choice = above
    else:
        # Tie: pick the one with even mantissa field.
        def bits_of(r):
            for b in range(1 << TINY.width):
                v = _tiny_exact(b)
                if isinstance(v, Fraction) and abs(v) == r and v >= 0:
                    return b
            raise AssertionError
        choice = below if bits_of(below) % 2 == 0 else above
    for b in range(1 << TINY.width):
        v = _tiny_exact(b)
        if isinstance(v, Fraction) and abs(v) == choice and (v < 0) == bool(sign):
            return b
        if choice == 0 and isinstance(v, Fraction) and v == 0:
            return TINY.zero(sign)
    raise AssertionError("unreachable")


def _finite_tiny_patterns():
    return [b for b in range(1 << TINY.width)
            if isinstance(_tiny_exact(b), Fraction)]


@pytest.mark.parametrize("op", ["mul", "add"])
def test_tiny_format_exhaustive_against_fraction_oracle(op):
    """Every finite x finite pair in the tiny format, checked exactly."""
    patterns = _finite_tiny_patterns()
    step = 3  # subsample pairs for runtime; still ~1800 pairs per op
    for i, a in enumerate(patterns[::step]):
        for b in patterns[i % step::step]:
            ea, eb = _tiny_exact(a), _tiny_exact(b)
            if op == "mul":
                got = fp_mul(TINY, a, b)
                want = _tiny_round(ea * eb, 0)
            else:
                got = fp_add(TINY, a, b)
                want = _tiny_round(ea + eb, 0)
            if TINY.is_zero(got) and TINY.is_zero(want):
                continue  # signed-zero differences are acceptable
            assert got == want, (
                f"{op}({TINY.decode(a)}, {TINY.decode(b)}): "
                f"got {TINY.decode(got)}, want {TINY.decode(want)}"
            )


# ----------------------------------------------------------------------
# IEEE special-case algebra
# ----------------------------------------------------------------------
def test_mul_special_cases():
    one = FP32.encode(1.0)
    assert fp_mul(FP32, FP32.nan(), one) == FP32.nan()
    assert fp_mul(FP32, FP32.inf(), one) == FP32.inf()
    assert fp_mul(FP32, FP32.inf(), FP32.encode(-2.0)) == FP32.inf(1)
    assert FP32.is_nan(fp_mul(FP32, FP32.inf(), FP32.zero()))


def test_add_special_cases():
    one = FP32.encode(1.0)
    assert fp_add(FP32, FP32.nan(), one) == FP32.nan()
    assert fp_add(FP32, FP32.inf(), one) == FP32.inf()
    assert FP32.is_nan(fp_add(FP32, FP32.inf(), FP32.inf(1)))
    assert fp_add(FP32, FP32.inf(1), FP32.inf(1)) == FP32.inf(1)


def test_add_exact_cancellation_is_positive_zero():
    a = FP32.encode(1.5)
    b = FP32.encode(-1.5)
    assert fp_add(FP32, a, b) == FP32.zero(0)


def test_mul_add_special_cases():
    one = FP32.encode(1.0)
    assert fp_mul_add(FP32, FP32.nan(), one, one) == FP32.nan()
    assert FP32.is_nan(fp_mul_add(FP32, FP32.inf(), FP32.zero(), one))
    # inf*1 + (-inf) = nan
    assert FP32.is_nan(fp_mul_add(FP32, FP32.inf(), one, FP32.inf(1)))
    assert fp_mul_add(FP32, FP32.inf(), one, FP32.inf()) == FP32.inf()
    assert fp_mul_add(FP32, one, one, FP32.inf(1)) == FP32.inf(1)


# ----------------------------------------------------------------------
# fused vs unfused rounding
# ----------------------------------------------------------------------
def test_fma_single_rounding_differs_from_two_roundings():
    """Classic FMA witness: a*b+c where the product rounds away info."""
    spec = FP16
    a = spec.encode(1.0009765625)      # 1 + 2^-10 (odd mantissa lsb)
    b = spec.encode(1.0009765625)
    c = spec.encode(-1.001953125)      # -(1 + 2^-9)
    fused = fp_mul_add(spec, a, b, c)
    unfused = fp_add(spec, fp_mul(spec, a, b), c)
    # Exact: (1+2^-10)^2 - (1+2^-9) = 2^-20; the unfused path loses it.
    assert spec.decode(fused) == 2.0 ** -20
    assert spec.decode(unfused) == 0.0


@given(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)
@property_settings(scale=2)
def test_fp32_mul_matches_python_float(a, b):
    """FP32 with RNE is exactly Python's double rounded to single."""
    bits = fp_mul(FP32, FP32.encode(a), FP32.encode(b))
    af = FP32.decode(FP32.encode(a))
    bf = FP32.decode(FP32.encode(b))
    want = struct.unpack("<f", struct.pack("<f", af * bf))[0]
    assert FP32.decode(bits) == pytest.approx(want, rel=1e-7, abs=1e-38)


@given(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)
@property_settings(scale=2)
def test_fp32_add_matches_python_float(a, b):
    bits = fp_add(FP32, FP32.encode(a), FP32.encode(b))
    af = FP32.decode(FP32.encode(a))
    bf = FP32.decode(FP32.encode(b))
    want = struct.unpack("<f", struct.pack("<f", af + bf))[0]
    assert FP32.decode(bits) == pytest.approx(want, rel=1e-7, abs=1e-38)


def test_overflow_rounds_to_inf():
    big = FP16.encode(60000.0)
    assert FP16.is_inf(fp_mul(FP16, big, big))


def test_underflow_to_subnormal_and_zero():
    tiny = FP16.encode(2.0 ** -14)  # smallest normal
    half = FP16.encode(0.5)
    sub = fp_mul(FP16, tiny, half)
    assert FP16.decode(sub) == 2.0 ** -15  # subnormal
    zero = fp_mul(FP16, sub, FP16.encode(2.0 ** -12))
    assert FP16.is_zero(zero)
