"""Trace capture: eligibility findings, op scripts, scoping rules."""

import pytest

from repro.connections import Buffer, In, Out
from repro.kernel import Simulator
from repro.trace import CaptureError, TRACE_SCHEMA, capture


def _producer(port, n):
    for i in range(n):
        yield from port.push(i)


def _consumer(port, n):
    for _ in range(n):
        yield from port.pop()


def _pipe(n_msgs=8, capacity=2):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = Buffer(sim, clk, capacity=capacity, name="pipe")
    sim.add_thread(_producer(Out(chan, name="out"), n_msgs), clk, name="p")
    sim.add_thread(_consumer(In(chan, name="in"), n_msgs), clk, name="c")
    return sim, chan


def test_blocking_pipeline_is_eligible():
    sim, chan = _pipe()
    with capture(sim) as session:
        sim.run(until=2000)
    trace = session.trace
    assert trace["schema"] == TRACE_SCHEMA
    assert trace["eligible"] and trace["reasons"] == []
    assert [c["path"] for c in trace["channels"]] == ["pipe"]
    assert trace["channels"][0]["stats"]["transfers"] == 8
    # Two threads, one completed op script each, both generators done.
    assert all(t["finished"] and t["pending"] is None
               for t in trace["threads"])
    assert sum(len(t["ops"]) for t in trace["threads"]) == 16


def test_trace_records_kernel_counters_verbatim():
    sim, chan = _pipe()
    with capture(sim) as session:
        sim.run(until=2000)
    stats = session.trace["channels"][0]["stats"]
    s = chan.stats
    assert stats == {
        "transfers": s.transfers,
        "push_attempts": s.push_attempts,
        "pop_attempts": s.pop_attempts,
        "push_rejections": s.push_rejections,
        "pop_rejections": s.pop_rejections,
        "stall_cycles": s.stall_cycles,
        "occupancy_sum": s.occupancy_sum,
        "cycles": s.cycles,
    }


def test_nonblocking_ops_recorded_as_reasons():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = Buffer(sim, clk, capacity=2, name="pipe")
    out = Out(chan, name="out")

    def poller(port):
        while not port.can_pop():
            yield
        port.pop_nb()

    sim.add_thread(_producer(out, 1), clk, name="p")
    sim.add_thread(poller(In(chan, name="in")), clk, name="c")
    with capture(sim) as session:
        sim.run(until=500)
    trace = session.trace
    assert not trace["eligible"]
    text = " ".join(trace["reasons"])
    assert "can_pop" in text and "pop_nb" in text


def test_two_clocks_are_a_reason():
    sim = Simulator()
    sim.add_clock("a", period=10)
    sim.add_clock("b", period=7)
    with capture(sim) as session:
        sim.run(until=100)
    assert not session.trace["eligible"]
    assert any("2 clocks" in r for r in session.trace["reasons"])


def test_already_started_clock_is_a_reason():
    sim, _ = _pipe()
    sim.run(until=50)
    with capture(sim) as session:
        sim.run(until=500)
    assert any("already ticked" in r for r in session.trace["reasons"])


def test_midrun_set_stall_is_a_reason():
    sim, chan = _pipe()
    with capture(sim) as session:
        sim.run(until=100)
        chan.set_stall(0.5, seed=7)
        sim.run(until=2000)
    assert any("mid-run" in r for r in session.trace["reasons"])


def test_capture_time_set_stall_records_seed():
    sim, chan = _pipe()
    with capture(sim) as session:
        chan.set_stall(0.25, seed=42)
        sim.run(until=2000)
    rec = session.trace["channels"][0]
    assert rec["stall_probability"] == 0.25 and rec["stall_seed"] == 42
    # set_stall before the first tick is not "mid-run".
    assert not any("mid-run" in r for r in session.trace["reasons"])


def test_preexisting_stall_seed_is_unknown():
    sim, chan = _pipe()
    chan.set_stall(0.25, seed=42)  # before the capture window
    with capture(sim) as session:
        sim.run(until=2000)
    trace = session.trace
    assert trace["channels"][0]["stall_seed"] is None
    assert any("predates the capture window" in r for r in trace["reasons"])


def test_preloaded_channel_is_a_reason():
    sim, chan = _pipe()
    Out(chan, name="pre").push_nb(99)  # message in flight before capture
    with capture(sim) as session:
        sim.run(until=2000)
    assert any("before" in r and "pipe" in r
               for r in session.trace["reasons"])


def test_timed_schedule_during_capture_is_a_reason():
    sim, _ = _pipe()
    with capture(sim) as session:
        sim.schedule(55, lambda: None)
        sim.run(until=2000)
    assert any("timed event was scheduled" in r
               for r in session.trace["reasons"])


def test_multiple_pushers_are_a_reason():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = Buffer(sim, clk, capacity=4, name="shared")
    sim.add_thread(_producer(Out(chan, name="o1"), 2), clk, name="p1")
    sim.add_thread(_producer(Out(chan, name="o2"), 2), clk, name="p2")
    sim.add_thread(_consumer(In(chan, name="in"), 4), clk, name="c")
    with capture(sim) as session:
        sim.run(until=2000)
    assert any("2 pushing threads" in r for r in session.trace["reasons"])


def test_pending_op_recorded_when_horizon_cuts_midrun():
    sim, _ = _pipe(n_msgs=50, capacity=1)
    with capture(sim) as session:
        sim.run(until=80)  # far too short for 50 messages
    trace = session.trace
    assert trace["eligible"]
    producer = next(t for t in trace["threads"] if t["path"] == "p")
    assert not producer["finished"]
    assert producer["pending"] is not None or producer["ops"]


def test_captures_do_not_nest():
    sim, _ = _pipe()
    with capture(sim):
        with pytest.raises(CaptureError, match="nest"):
            with capture(sim):
                pass


def test_existing_watchdog_refused():
    sim, _ = _pipe()
    sim.watchdog = object()
    with pytest.raises(CaptureError, match="watchdog"):
        with capture(sim):
            pass


def test_instrumentation_is_scoped():
    """Patched methods are restored when the capture window closes."""
    from repro.connections.channel import FastChannel

    before = FastChannel.do_push
    sim, _ = _pipe()
    with capture(sim):
        assert FastChannel.do_push is not before
        sim.run(until=500)
    assert FastChannel.do_push is before
    assert sim.watchdog is None
