"""Capture -> identity replay round-trip over the designs registry.

The property: for every registered experiment design, either

* the captured trace is eligible, and replaying it with **unchanged**
  parameters reproduces the kernel's per-channel counters bit for bit
  (the final counters in the trace are the oracle — capture records
  them straight off the simulator), or
* the trace records at least one human-readable ineligibility reason,
  and the replayer refuses it.

There is no third outcome: a design may never be silently dropped, and
an "eligible" trace may never replay to different numbers.
"""

import pytest

from repro.experiments.designs import DESIGN_BUILDERS, build_design
from repro.trace import CaptureError, ReplayError, capture, replay

#: Small per-design horizons (ns) keeping the suite fast; the property
#: holds for any horizon.
_HORIZON = 3000

_SIMULATED = sorted(name for name, builder in DESIGN_BUILDERS.items()
                    if builder is not None)


@pytest.mark.parametrize("experiment", _SIMULATED)
def test_capture_replay_roundtrip(experiment):
    sim = build_design(experiment)
    try:
        with capture(sim) as session:
            sim.run(until=_HORIZON)
    except CaptureError as exc:
        pytest.skip(f"{experiment}: capture refused ({exc})")
    trace = session.trace

    if not trace["eligible"]:
        assert trace["reasons"], (
            f"{experiment}: ineligible trace must record why")
        with pytest.raises(ReplayError):
            replay(trace, {})
        return

    result = replay(trace, {})
    for rec in trace["channels"]:
        assert result.channels[rec["path"]] == rec["stats"], (
            f"{experiment}: channel {rec['path']} diverged")
    assert result.cycles == trace["clock"]["cycles"]
    assert result.now == trace["now"]


def test_registry_has_replayable_and_fallback_designs():
    """The property above must be exercised from both sides."""
    eligible, ineligible = [], []
    for experiment in _SIMULATED:
        sim = build_design(experiment)
        try:
            with capture(sim) as session:
                sim.run(until=_HORIZON)
        except CaptureError:
            continue
        (eligible if session.trace["eligible"] else
         ineligible).append(experiment)
    assert "li-latency" in eligible
    assert ineligible, "expected at least one ineligible design"
