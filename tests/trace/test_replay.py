"""Trace replay: differential against the kernel, guards, validation.

The oracle everywhere is the threaded kernel itself: build the same
design twice, run one copy fully, capture the other and replay it —
every per-channel counter must match bit for bit.
"""

import pytest

from repro.connections import Buffer, In, Out
from repro.kernel import Simulator
from repro.trace import ReplayError, capture, replay, stall_schedule


def _producer(port, n):
    for i in range(n):
        yield from port.push(i)


def _consumer(port, n):
    for _ in range(n):
        yield from port.pop()


def _build(n_msgs, *, capacity=2, extra_latency=0, stall=None, gap=0):
    """Linear producer -> chan -> consumer with optional consumer gaps."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = Buffer(sim, clk, capacity=capacity, name="pipe",
                  extra_latency=extra_latency)
    if stall is not None:
        chan.set_stall(stall[0], seed=stall[1])

    def slow_consumer(port):
        for _ in range(n_msgs):
            yield from port.pop()
            for _ in range(gap):
                yield

    sim.add_thread(_producer(Out(chan, name="out"), n_msgs), clk, name="p")
    sim.add_thread(slow_consumer(In(chan, name="in")), clk, name="c")
    return sim, chan


def _kernel_stats(chan):
    s = chan.stats
    return {"transfers": s.transfers, "push_attempts": s.push_attempts,
            "pop_attempts": s.pop_attempts,
            "push_rejections": s.push_rejections,
            "pop_rejections": s.pop_rejections,
            "stall_cycles": s.stall_cycles,
            "occupancy_sum": s.occupancy_sum, "cycles": s.cycles}


def _capture(n_msgs=12, until=4000, **kw):
    sim, chan = _build(n_msgs, **kw)
    with capture(sim) as session:
        sim.run(until=until)
    return session.trace


def _differential(overrides, n_msgs=12, until=4000, base_kw=None, **run_kw):
    """Replay `overrides` on a captured base; oracle is a fresh sim."""
    trace = _capture(n_msgs, until=until, **(base_kw or {}))
    result = replay(trace, overrides)
    sim, chan = _build(n_msgs, **run_kw)
    sim.run(until=until)
    assert result.channels["pipe"] == _kernel_stats(chan)
    return result


def test_identity_replay_is_byte_identical():
    trace = _capture()
    result = replay(trace, {})
    assert result.channels["pipe"] == trace["channels"][0]["stats"]
    assert result.cycles == trace["clock"]["cycles"]
    assert result.now == trace["now"]


@pytest.mark.parametrize("capacity", [1, 2, 3, 8])
def test_capacity_override_matches_kernel(capacity):
    _differential({"channels": {"pipe": {"capacity": capacity}}},
                  base_kw={"capacity": 8}, capacity=capacity)


@pytest.mark.parametrize("extra", [0, 1, 3])
def test_extra_latency_override_matches_kernel(extra):
    _differential({"channels": {"pipe": {"extra_latency": extra}}},
                  base_kw={"capacity": 4},
                  capacity=4, extra_latency=extra)


@pytest.mark.parametrize("p,seed", [(0.25, 7), (0.5, 7), (0.9, 11)])
def test_stall_override_matches_kernel(p, seed):
    _differential({"channels": {"pipe": {"stall": [p, seed]}}},
                  base_kw={"capacity": 4}, capacity=4, stall=(p, seed))


def test_stall_clear_override_matches_kernel():
    # Base captured *with* a stall (seed recorded in-window) -> cleared.
    sim, chan = _build(12, capacity=4)
    with capture(sim) as session:
        chan.set_stall(0.5, seed=3)
        sim.run(until=4000)
    result = replay(session.trace, {"channels": {"pipe": {"stall": None}}})
    oracle_sim, oracle = _build(12, capacity=4)
    oracle_sim.run(until=4000)
    assert result.channels["pipe"] == _kernel_stats(oracle)


def test_slow_consumer_backpressure_matches_kernel():
    _differential({"channels": {"pipe": {"capacity": 1}}},
                  base_kw={"capacity": 8, "gap": 3},
                  capacity=1, gap=3)


def test_combined_overrides_match_kernel():
    _differential(
        {"channels": {"pipe": {"capacity": 2, "extra_latency": 1,
                               "stall": [0.3, 5]}}},
        base_kw={"capacity": 8},
        capacity=2, extra_latency=1, stall=(0.3, 5))


def test_period_override_rescales_now():
    trace = _capture()
    result = replay(trace, {"period": 7})
    assert result.period == 7
    assert result.now == (result.cycles - 1) * 7


def test_stall_schedule_matches_kernel_draws():
    """The analytic schedule is the exact per-tick RNG stream."""
    horizon = 200
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = Buffer(sim, clk, capacity=2, name="idle")
    chan.set_stall(0.4, seed=99)
    sim.run(until=(horizon - 1) * 10)
    bits = stall_schedule(99, 0.4, horizon)
    assert sum(bits) == chan.stats.stall_cycles
    assert chan.stats.cycles == horizon


def test_thread_op_cycles_match_capture():
    trace = _capture()
    result = replay(trace, {})
    for rec in trace["threads"]:
        assert result.threads[rec["path"]]["op_cycles"] == \
            [op[3] for op in rec["ops"]]


# -- validation & soundness guards -------------------------------------
def test_ineligible_trace_refused():
    sim = Simulator()
    sim.add_clock("a", period=10)
    sim.add_clock("b", period=10)
    with capture(sim) as session:
        sim.run(until=100)
    with pytest.raises(ReplayError, match="not replayable"):
        replay(session.trace, {})


def test_unknown_override_key_refused():
    trace = _capture()
    with pytest.raises(ReplayError, match="unknown override keys"):
        replay(trace, {"channels": {"pipe": {"depth": 4}}})
    with pytest.raises(ReplayError, match="unknown override keys"):
        replay(trace, {"pipe_capacity": 4})


def test_unknown_channel_refused():
    trace = _capture()
    with pytest.raises(ReplayError, match="unknown channels"):
        replay(trace, {"channels": {"nope": {"capacity": 4}}})


def test_bad_values_refused():
    trace = _capture()
    with pytest.raises(ReplayError, match="capacity"):
        replay(trace, {"channels": {"pipe": {"capacity": 0}}})
    with pytest.raises(ReplayError, match="probability"):
        replay(trace, {"channels": {"pipe": {"stall": [1.5, 0]}}})
    with pytest.raises(ReplayError, match="period"):
        replay(trace, {"period": 0})


def test_wrong_schema_refused():
    trace = _capture()
    trace["schema"] = "something/else"
    with pytest.raises(ReplayError, match="schema"):
        replay(trace, {})


def test_unknown_stall_seed_refused():
    sim, chan = _build(12, capacity=4)
    chan.set_stall(0.5, seed=3)  # seed predates the capture window
    with capture(sim) as session:
        sim.run(until=4000)
    # The trace already records the reason; force-clear it to reach the
    # replayer's own guard.
    session.trace["eligible"], session.trace["reasons"] = True, []
    with pytest.raises(ReplayError, match="unknown seed"):
        replay(session.trace, {})


def test_run_ahead_of_truncated_capture_refused():
    """Speeding up a capture that ended mid-run is unsound: refused."""
    # capacity=1 with a horizon far too short for 40 messages: the
    # producer's script is incomplete (generator not exhausted).
    sim, _ = _build(40, capacity=1)
    with capture(sim) as session:
        sim.run(until=300)
    trace = session.trace
    assert trace["eligible"]
    assert not all(t["finished"] for t in trace["threads"])
    with pytest.raises(ReplayError):
        replay(trace, {"channels": {"pipe": {"capacity": 16}}})


def test_slowdown_of_truncated_capture_is_allowed():
    """Slowing a truncated capture down cannot reveal hidden ops."""
    sim, chan = _build(40, capacity=4)
    with capture(sim) as session:
        sim.run(until=300)
    result = replay(session.trace,
                    {"channels": {"pipe": {"capacity": 1}}})
    oracle_sim, oracle = _build(40, capacity=1)
    oracle_sim.run(until=300)
    assert result.channels["pipe"] == _kernel_stats(oracle)
