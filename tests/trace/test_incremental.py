"""The incremental sweep engine: differential oracle + accounting.

Every test compares ``run_sweep(..., incremental=True)`` against a
plain full-simulation sweep of the same points via
``SweepResult.canonical()`` — the byte-comparable serialization — so
replayed, analytically derived, cache-served and fallback results are
all held to the same standard: indistinguishable from fresh
simulations.
"""

import pytest

from repro.experiments.sweeps import build_space
from repro.sweep import ResultCache, run_sweep

pytestmark = pytest.mark.usefixtures("pinned_rev")


@pytest.fixture
def pinned_rev(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_REV", "trace-test")


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"), version="trace-test")


def _canonical(points):
    return run_sweep(points, telemetry=False).canonical()


def test_li_latency_incremental_is_byte_identical(cache):
    points = build_space("li_latency")
    result = run_sweep(points, cache=cache, incremental=True)
    assert result.canonical() == _canonical(points)
    # The headline property: 48 points, 2 structural bases, 0 fallbacks.
    assert result.derived == len(points)
    assert result.captures == 2
    assert result.executed == 0 and result.errors == 0
    assert result.fallback_reasons == {}
    assert all(o.mode == "derived" for o in result.outcomes)


def test_li_latency_meets_derived_floor(cache):
    """The CI gate: >= 90 % of the default space must be derived."""
    points = build_space("li_latency")
    result = run_sweep(points, cache=cache, incremental=True)
    assert result.derived / len(points) >= 0.9


def test_warm_incremental_is_fully_cached_and_identical(cache):
    points = build_space("li_latency")
    run_sweep(points, cache=cache, incremental=True)
    warm = run_sweep(points, cache=cache, incremental=True)
    assert warm.cache_hits == len(points)
    assert warm.captures == 0 and warm.derived == 0
    assert warm.canonical() == _canonical(points)


def test_warm_traces_skip_recapture(cache):
    points = build_space("li_latency")
    run_sweep(points, cache=cache, incremental=True)
    # New satellite points against the same structural bases: the
    # cached traces serve them without a single new simulation.
    fresh = build_space("li_latency", capacities=(3, 5))
    result = run_sweep(fresh, cache=cache, incremental=True)
    assert result.captures == 0
    assert result.derived == len(fresh)
    assert result.canonical() == _canonical(fresh)


def test_derived_entries_never_shadow_exact(cache):
    points = build_space("li_latency")[:4]
    run_sweep(points, cache=cache, incremental=True)
    # A plain sweep with the same cache sees only exact keys: the
    # derived entries must be invisible to it.
    plain = run_sweep(points, cache=cache, telemetry=False)
    assert plain.cache_hits == 0 and plain.executed == len(points)
    # And once exact entries exist, incremental lookups prefer them.
    marked = dict(plain.outcomes[0].result)
    cache.put(points[0], {"result": marked, "telemetry": None})
    warm = run_sweep(points, cache=cache, incremental=True)
    assert warm.outcomes[0].mode == "exact"
    assert warm.outcomes[0].result == marked


def test_stall_verification_falls_back_with_recorded_reasons(cache):
    points = build_space("stall_verification", trials=2)
    result = run_sweep(points, cache=cache, incremental=True)
    assert result.canonical() == _canonical(points)
    # Statically derivable, dynamically refused: the one capture runs,
    # records the harness's non-blocking ops, and every point simulates.
    assert result.derived == 0
    assert result.executed == len(points)
    assert result.captures == 1
    reasons = "; ".join(result.fallback_reasons)
    assert "pop_nb" in reasons and "push_nb" in reasons
    assert all(o.fallback_reason for o in result.outcomes)


def test_gals_overhead_is_analytically_derived(cache):
    points = build_space("gals_overhead")
    result = run_sweep(points, cache=cache, incremental=True)
    assert result.canonical() == _canonical(points)
    assert result.derived == len(points)
    assert result.captures == 0 and result.executed == 0


def test_experiment_without_adapter_falls_back(cache):
    points = build_space("fig3_crossbar", ports=(2,), txns_per_port=6)
    result = run_sweep(points, cache=cache, incremental=True)
    assert result.canonical() == _canonical(points)
    assert result.derived == 0 and result.executed == len(points)
    assert list(result.fallback_reasons) == [
        "experiment registers no replay adapter"]


def test_incremental_requires_single_experiment(cache):
    mixed = build_space("li_latency")[:1] + build_space("gals_overhead")[:1]
    with pytest.raises(ValueError, match="single experiment"):
        run_sweep(mixed, cache=cache, incremental=True)


def test_incremental_without_cache_still_works():
    points = build_space("li_latency")[:6]
    result = run_sweep(points, incremental=True)
    assert result.canonical() == _canonical(points)
    assert result.derived == len(points)


def test_payload_reports_modes_and_fallbacks(cache):
    points = build_space("li_latency")[:4]
    payload = run_sweep(points, cache=cache,
                        incremental=True).to_payload()
    assert payload["incremental"] is True
    assert payload["modes"] == ["derived"] * 4
    assert payload["derived"] == 4
    assert "fallback_reasons" in payload
