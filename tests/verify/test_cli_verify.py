"""The ``repro verify`` verb: exit codes, JSON, and failure replay."""

import json

import pytest

from repro.cli import main


def test_verify_verb_reports_and_exits_zero(capsys):
    assert main(["verify", "--max-examples", "2", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "verification campaign: profile=dev" in out
    for family in ("differential", "li", "classification", "stateful"):
        assert family in out
    assert "all oracles held" in out


def test_verify_json_payload(tmp_path, capsys):
    path = tmp_path / "verify.json"
    assert main(["verify", "--max-examples", "2", "--seed", "0",
                 "--checks", "differential", "--json", str(path)]) == 0
    capsys.readouterr()
    payload = json.loads(path.read_text())
    assert payload["ok"] is True
    assert payload["checks"] == ["differential"]
    assert payload["families"][0]["family"] == "differential"
    assert payload["families"][0]["lint_clean"] == \
        payload["families"][0]["examples"]
    # Wall time lives only under the serializer's documented
    # nondeterministic key, so canonical payloads stay comparable.
    assert "wall_seconds" in payload


def test_verify_validates_parameters(capsys):
    with pytest.raises(ValueError, match="unknown verify check"):
        main(["verify", "--checks", "vibes"])
    with pytest.raises(ValueError, match="unknown hypothesis profile"):
        main(["verify", "--profile", "nope"])
    with pytest.raises(ValueError, match="unknown inject mode"):
        main(["verify", "--inject", "chaos"])


def test_verify_exits_two_without_hypothesis(monkeypatch, capsys):
    from repro import verify

    monkeypatch.setattr(verify, "hypothesis_available", lambda: False)
    assert main(["verify", "--max-examples", "2"]) == 2
    out = capsys.readouterr().out
    assert "pip install 'repro[test]'" in out


def test_seeded_bug_shrinks_and_replays_byte_identically(tmp_path,
                                                          capsys):
    """The acceptance loop: --inject corrupt fails, shrinks to a
    minimal counterexample, persists it, and replays it exactly."""
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    args = ["verify", "--max-examples", "2", "--seed", "0",
            "--checks", "li", "--inject", "corrupt"]
    assert main([*args, "--json", str(first)]) == 1
    out = capsys.readouterr().out
    assert "ORACLE VIOLATED" in out
    assert "counterexample:" in out
    # Second run replays the persisted failure (example database) and
    # lands on the byte-identical minimal counterexample.
    assert main([*args, "--json", str(second)]) == 1
    capsys.readouterr()
    a = json.loads(first.read_text())["families"][0]
    b = json.loads(second.read_text())["families"][0]
    assert a["ok"] is False and b["ok"] is False
    assert "diverge from the golden" in a["error"]
    assert json.dumps(a["counterexample"], sort_keys=True) \
        == json.dumps(b["counterexample"], sort_keys=True)
    # The shrunk reproducer is minimal: one message through one sink.
    topo = a["counterexample"]["topology"]
    assert sum(len(s) for s in topo["streams"]) == 1
