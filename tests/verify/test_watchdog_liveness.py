"""Satellite liveness property: generated designs never hang unfaulted.

The topology family is deadlock-free by construction (layered
in-forest, schedule-driven merges) — this property pins that claim
under a watchdog, with and without adversarial-but-lossless stall
schedules: zero ``HangError`` as long as no lossy fault plan is
applied, even when every drawn stall burst saturates its channel.
"""

from hypothesis import given

from repro.faults.watchdog import HangError
from repro.verify import oracles
from repro.verify.profiles import property_settings
from repro.verify.strategies import topologies, verify_cases
from repro.verify.topology import build_topology


@given(spec=topologies())
@property_settings(scale=0.5)
def test_unfaulted_generated_designs_never_hang(spec):
    built = build_topology(spec)
    try:
        oracles.run_watched(built)
    except HangError as exc:  # pragma: no cover - the property's point
        raise AssertionError(
            "live generated design hung with no fault plan:\n"
            + exc.diagnosis.format()) from exc
    assert built.done()


@given(case=verify_cases(plans="stall"))
@property_settings(scale=0.5)
def test_stall_heavy_designs_stay_live(case):
    built = build_topology(case.topology)
    oracles.materialize_plan(case.plan, built).apply(built.sim)
    try:
        oracles.run_watched(built)
    except HangError as exc:  # pragma: no cover - the property's point
        raise AssertionError(
            "lossless stall schedule hung a live design:\n"
            + exc.diagnosis.format()) from exc
    assert built.done()
