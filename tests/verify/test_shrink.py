"""Principled shrinking: outcome *class* is preserved, not just failure.

The regression this pins down: a naive shrinker accepts any candidate
that still "fails somehow", which can silently trade a hang for an
unrelated crash (or a livelock for a deadlock) — the minimal reproducer
then debugs a different bug than the one the campaign found.  Both the
greedy pass (``match="class"``, the default) and the Hypothesis subset
shrinker validate candidates against
:func:`repro.faults.campaign.outcome_class` instead.
"""

import pytest

from repro import registry
from repro.connections import Buffer, In, Out
from repro.faults import FaultPlan, outcome_class
from repro.faults.campaign import Harness, Rig, execute, shrink
from repro.kernel import Simulator
from repro.verify.shrinking import shrink_plan

N_MSGS = 8
RIG_NAME = "shrink_regression_rig"


def _build_pipeline_rig(seed: int) -> Rig:
    """producer -> mid -> forward -> side -> sink, expects clean."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    received = []
    with sim.design.scope("chip", kind="Chip", clock=clk):
        mid = Buffer(sim, clk, capacity=2, name="mid")
        side = Buffer(sim, clk, capacity=2, name="side")

        def producer(out: Out):
            for i in range(N_MSGS):
                yield from out.push(i)

        def forward(inp: In, out: Out):
            for _ in range(N_MSGS):
                msg = yield from inp.pop()
                yield from out.push(msg)

        def sink(inp: In):
            for _ in range(N_MSGS):
                received.append((yield from inp.pop()))

        with sim.design.scope("p", kind="Unit"):
            sim.add_thread(producer(Out(mid, name="out")), clk, name="ctl")
        with sim.design.scope("f", kind="Unit"):
            sim.add_thread(forward(In(mid, name="in"),
                                   Out(side, name="out")), clk, name="ctl")
        with sim.design.scope("s", kind="Unit"):
            sim.add_thread(sink(In(side, name="in")), clk, name="ctl")
    return Rig(sim=sim, clock=clk, until=1_000_000,
               verify=lambda: received == list(range(N_MSGS)),
               window=120, max_cycles=4000)


@pytest.fixture
def pipeline_harness():
    registry.register(registry.ExperimentSpec(
        name=RIG_NAME, summary="shrink regression fixture",
        harness=Harness(RIG_NAME, _build_pipeline_rig,
                        expected=("clean",), in_default_matrix=False),
        hidden=True))
    try:
        yield RIG_NAME
    finally:
        registry._SPECS.pop(RIG_NAME, None)
        registry._HARNESS_INDEX.pop(RIG_NAME, None)


def _boom(msg, rng):
    raise RuntimeError("corrupter exploded")


def _hang_then_crash_plan() -> FaultPlan:
    """Full plan deadlocks before the raising corrupter can ever fire;
    the corrupt directive alone crashes the run instead."""
    return (FaultPlan(seed=0)
            .drop("mid", probability=1.0)
            .corrupt("side", probability=1.0, corrupter=_boom))


def _livelock_then_deadlock_plan() -> FaultPlan:
    """Full plan trips the livelock window (stall active); the drop
    alone deadlocks (all threads blocked, no stall in sight)."""
    return (FaultPlan(seed=0)
            .stall_burst("mid", start=0, length=2000, probability=1.0)
            .drop("mid", probability=1.0))


# ----------------------------------------------------------------------
# outcome_class: the full classification shrinking validates against
# ----------------------------------------------------------------------
def test_outcome_class_distinguishes_hang_kinds_and_crashes():
    assert outcome_class({"outcome": "clean"}) == "clean"
    assert outcome_class({"outcome": "hang", "diagnosis": [
        {"type": "hang", "kind": "livelock"}]}) == "hang:livelock"
    assert outcome_class({"outcome": "hang"}) == "hang"
    assert outcome_class({"outcome": "crash",
                          "error": "TypeError: boom"}) == "crash:TypeError"
    assert outcome_class(
        {"outcome": "crash",
         "error": "output mismatch with zero injected lossy events "
                  "(silent corruption escape)"}) == "crash:escape"


def test_fixture_outcomes_are_as_designed(pipeline_harness):
    plan = _hang_then_crash_plan()
    full = execute(pipeline_harness, plan, seed=0)
    assert outcome_class(full) == "hang:deadlock"
    crash = execute(pipeline_harness, plan.without(0), seed=0)
    assert outcome_class(crash) == "crash:RuntimeError"

    plan = _livelock_then_deadlock_plan()
    full = execute(pipeline_harness, plan, seed=0)
    assert outcome_class(full) == "hang:livelock"
    assert outcome_class(
        execute(pipeline_harness, plan.without(0), seed=0)) \
        == "hang:deadlock"


# ----------------------------------------------------------------------
# the regression: naive shrinking flips a hang into a crash
# ----------------------------------------------------------------------
def test_naive_shrink_flips_hang_into_crash(pipeline_harness):
    plan = _hang_then_crash_plan()
    small = shrink(pipeline_harness, plan, seed=0, match="any")
    record = execute(pipeline_harness, small, seed=0)
    # The "reproducer" now crashes — a different bug than the hang the
    # campaign reported.  This is the behavior match="class" fixes.
    assert record["outcome"] == "crash"


def test_class_shrink_preserves_the_hang(pipeline_harness):
    plan = _hang_then_crash_plan()
    small = shrink(pipeline_harness, plan, seed=0, target_outcome="hang")
    assert len(small.directives) == 1
    assert small.directives[0].kind == "drop"
    assert outcome_class(execute(pipeline_harness, small, seed=0)) \
        == "hang:deadlock"


def test_outcome_match_still_flips_livelock_into_deadlock(
        pipeline_harness):
    plan = _livelock_then_deadlock_plan()
    coarse = shrink(pipeline_harness, plan, seed=0, match="outcome")
    assert [d.kind for d in coarse.directives] == ["drop"]
    assert outcome_class(execute(pipeline_harness, coarse, seed=0)) \
        == "hang:deadlock"  # diagnosis class silently changed

    exact = shrink(pipeline_harness, plan, seed=0, match="class")
    assert [d.kind for d in exact.directives] == ["stall_burst"]
    assert outcome_class(execute(pipeline_harness, exact, seed=0)) \
        == "hang:livelock"


def test_shrink_rejects_unknown_match_mode(pipeline_harness):
    with pytest.raises(ValueError, match="match mode"):
        shrink(pipeline_harness, FaultPlan(seed=0), seed=0,
               match="vibes")


def test_shrink_validates_target_outcome(pipeline_harness):
    plan = _hang_then_crash_plan()
    with pytest.raises(ValueError, match="does not reproduce"):
        shrink(pipeline_harness, plan, seed=0, target_outcome="crash")


# ----------------------------------------------------------------------
# the Hypothesis subset shrinker agrees with the principled greedy pass
# ----------------------------------------------------------------------
def test_hypothesis_shrink_preserves_outcome_class(pipeline_harness):
    plan = _hang_then_crash_plan()
    small = shrink_plan(pipeline_harness, plan, seed=0,
                        target_outcome="hang")
    assert [d.kind for d in small.directives] == ["drop"]
    assert outcome_class(execute(pipeline_harness, small, seed=0)) \
        == "hang:deadlock"


def test_hypothesis_shrink_finds_single_culprit():
    # Same scenario as the greedy test in tests/faults/test_campaign.py:
    # three directives, one culprit; the subset search lands on it.
    plan = (FaultPlan(seed=5)
            .stall_burst("down", start=10, length=40, probability=0.8)
            .drop("down", probability=1.0)
            .stall_burst("up", start=0, length=20, probability=0.5))
    small = shrink_plan("stall_verification", plan, seed=5,
                        target_outcome="detected")
    assert [d.kind for d in small.directives] == ["drop"]
    assert execute("stall_verification", small,
                   seed=5)["outcome"] == "detected"


def test_hypothesis_shrink_is_deterministic(pipeline_harness):
    plan = _livelock_then_deadlock_plan()
    first = shrink_plan(pipeline_harness, plan, seed=0)
    second = shrink_plan(pipeline_harness, plan, seed=0)
    assert first.describe() == second.describe()
    assert [d.kind for d in first.directives] == ["stall_burst"]
