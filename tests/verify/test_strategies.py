"""Generated-design strategies: legality, golden model, determinism."""

from hypothesis import given
from hypothesis import strategies as st

from repro.verify.profiles import property_settings
from repro.verify.strategies import (lossy_plans, stall_plans, topologies,
                                     verify_cases)
from repro.verify.topology import (TopologySpec, edge_sequences,
                                   golden_outputs, merge_schedule,
                                   node_inputs, validate)


# ----------------------------------------------------------------------
# merge_schedule: the static pop order every generated merge follows
# ----------------------------------------------------------------------
def test_merge_schedule_is_round_robin_skipping_exhausted():
    assert merge_schedule((3, 1, 2)) == (0, 1, 2, 0, 2, 0)
    assert merge_schedule((0, 2)) == (1, 1)
    assert merge_schedule((1,)) == (0,)
    assert merge_schedule((0, 0)) == ()


@given(counts=st.lists(st.integers(0, 6), min_size=1, max_size=4)
       .map(tuple))
@property_settings()
def test_merge_schedule_consumes_every_count_exactly(counts):
    schedule = merge_schedule(counts)
    assert len(schedule) == sum(counts)
    for i, count in enumerate(counts):
        assert schedule.count(i) == count
    # Round-robin fairness: between two visits of input i, every other
    # input that still had messages is visited at most once.
    for i in range(len(counts)):
        positions = [p for p, idx in enumerate(schedule) if idx == i]
        for a, b in zip(positions, positions[1:]):
            gap = schedule[a + 1:b]
            assert len(gap) == len(set(gap))


# ----------------------------------------------------------------------
# topologies(): legal by construction
# ----------------------------------------------------------------------
@given(spec=topologies())
@property_settings()
def test_generated_specs_validate_and_describe(spec):
    validate(spec)  # idempotent re-check outside the strategy
    desc = spec.describe()
    assert desc == TopologySpec(
        periods=tuple(desc["periods"]),
        domains=tuple(desc["domains"]),
        widths=tuple(desc["widths"]),
        consumers=tuple(tuple(c) for c in desc["consumers"]),
        channels=spec.channels,
        streams=tuple(tuple(s) for s in desc["streams"]),
        addends=tuple(tuple(a) for a in desc["addends"]),
    ).describe()
    # The in-forest property: every producer feeds exactly one consumer.
    for i, row in enumerate(spec.consumers):
        assert len(row) == spec.widths[i]


@given(spec=topologies())
@property_settings()
def test_golden_model_conserves_messages(spec):
    outputs = golden_outputs(spec)
    assert len(outputs) == spec.widths[-1]
    assert sum(len(o) for o in outputs) == spec.total_messages
    # Every unit layer's edges carry exactly what flowed in.
    seq = edge_sequences(spec)
    for layer in range(spec.n_layers - 1):
        total = sum(len(seq[(layer, j)])
                    for j in range(spec.widths[layer]))
        assert total == spec.total_messages


@given(spec=topologies())
@property_settings()
def test_node_inputs_partition_each_producer_layer(spec):
    for layer in range(1, spec.n_layers):
        seen = []
        for node in range(spec.widths[layer]):
            seen.extend(node_inputs(spec, layer, node))
        assert sorted(seen) == list(range(spec.widths[layer - 1]))


# ----------------------------------------------------------------------
# plan strategies: edges exist, loss classes are kept separate
# ----------------------------------------------------------------------
@given(case=verify_cases(plans="stall"))
@property_settings()
def test_stall_plans_are_lossless_and_target_real_edges(case):
    edges = sum(case.topology.widths[:-1])
    assert not case.plan.lossy
    assert case.plan.stalls
    for stall in case.plan.stalls:
        assert 0 <= stall.edge < edges
        assert stall.length <= 300  # below the oracle livelock window


@given(case=verify_cases(plans="lossy"))
@property_settings()
def test_lossy_plans_always_carry_a_lossy_directive(case):
    edges = sum(case.topology.widths[:-1])
    assert case.plan.lossy
    for fault in case.plan.lossy:
        assert fault.kind in ("drop", "duplicate", "corrupt")
        assert 0 <= fault.edge < edges


@given(data=st.data())
@property_settings()
def test_plan_describe_is_json_round_trippable(data):
    import json

    spec = data.draw(topologies())
    plan = data.draw(data.draw(st.sampled_from(
        [stall_plans(spec), lossy_plans(spec)])))
    blob = json.dumps(plan.describe(), sort_keys=True)
    assert json.loads(blob) == plan.describe()
