"""Oracle families: they hold on legal designs and catch seeded bugs."""

import pytest
from hypothesis import given

from repro.verify import oracles
from repro.verify.profiles import property_settings
from repro.verify.strategies import PlanSpec, StallSpec, verify_cases
from repro.verify.topology import (ChannelSpec, TopologySpec,
                                   build_topology, golden_outputs)

#: A fixed 3-layer single-domain pipeline used by the seeded-bug tests:
#: two sources merging into one unit, then one sink.
SAMPLE = TopologySpec(
    periods=(10,),
    domains=(0, 0, 0),
    widths=(2, 1, 1),
    consumers=((0, 0), (0,)),
    channels=((ChannelSpec(), ChannelSpec(kind="bypass", capacity=2)),
              (ChannelSpec(kind="pipeline", capacity=2),)),
    streams=((1, 2, 3), (10, 20)),
    addends=((5,),),
)


def test_sample_topology_runs_to_golden():
    built = build_topology(SAMPLE)
    oracles.check_lint(built)
    oracles.run_watched(built)
    assert built.done()
    assert tuple(tuple(g) for g in built.got) == golden_outputs(SAMPLE)


def test_differential_oracle_engages_compiled_backend():
    assert oracles.check_differential(SAMPLE) == {"engaged": True}


def test_li_oracle_accepts_full_stall_burst():
    plan = PlanSpec(stalls=(StallSpec(edge=2, start=0, length=250,
                                      probability=1.0),))
    oracles.check_li(SAMPLE, plan)


def test_li_oracle_rejects_lossy_plans():
    plan = PlanSpec(lossy=())
    oracles.check_li(SAMPLE, plan)  # lossless: fine
    from repro.verify.strategies import LossySpec

    with pytest.raises(AssertionError, match="lossless"):
        oracles.check_li(SAMPLE, PlanSpec(lossy=(LossySpec(),)))


def test_li_oracle_catches_seeded_corruption():
    with pytest.raises(AssertionError, match="diverge from the golden"):
        oracles.check_li(SAMPLE, PlanSpec(), inject="corrupt")


def test_li_oracle_diagnoses_seeded_deadlock():
    with pytest.raises(AssertionError, match="hung with no fault plan"):
        oracles.check_li(SAMPLE, PlanSpec(), inject="deadlock")


def test_classification_clean_without_faults():
    from repro.verify.strategies import VerifyCase

    case = VerifyCase(topology=SAMPLE, plan=PlanSpec())
    assert oracles.check_classification(case) == "clean"


def test_classification_detects_forced_drop():
    from repro.verify.strategies import LossySpec, VerifyCase

    # Dropping everything on the sources' merged edge starves the sink:
    # depending on timing this classifies as detected or hang, never as
    # a crash or a silent escape.
    case = VerifyCase(
        topology=SAMPLE,
        plan=PlanSpec(lossy=(LossySpec(kind="corrupt", edge=2,
                                       probability=1.0),)))
    assert oracles.check_classification(case) == "detected"


@given(case=verify_cases(plans="lossy"))
@property_settings(scale=0.5)
def test_classification_is_total_over_lossy_plans(case):
    assert oracles.check_classification(case) in oracles.CLASSIFY_OUTCOMES
