"""Stateful invariant machines, run as plain pytest cases.

Each ``RuleBasedStateMachine`` mirrors a kernel component against a
pure-Python model and checks its invariants after every rule; here they
run under the active settings profile so CI gets deeper sequences.
"""

from repro.verify.machines import (CacheMachine, ChannelMachine,
                                   RouterMachine)
from repro.verify.profiles import property_settings

TestChannelMachine = ChannelMachine.TestCase
TestRouterMachine = RouterMachine.TestCase
TestCacheMachine = CacheMachine.TestCase

# Machine examples are whole operation sequences: scale the budget down
# but keep the profile's relative tiering (dev 5, ci 25, thorough 100).
for _case in (TestChannelMachine, TestRouterMachine, TestCacheMachine):
    _case.settings = property_settings(scale=0.25, floor=5,
                                       stateful_step_count=30)
