"""Tests comparing the paper's two port modelling styles (section 2.3).

The signal-accurate style executes delayed valid/ready operations in the
main thread; the sim-accurate style moves them to helper threads.  Both
are functionally correct over a buffered channel, but their elapsed
cycles diverge as a module touches more ports per iteration — the effect
quantified in Figure 3.
"""

import pytest

from repro.connections import (
    BufferSignal,
    SignalAccurateIn,
    SignalAccurateOut,
    SimAccurateIn,
    SimAccurateOut,
    stream_consumer,
    stream_producer,
)
from repro.kernel import Simulator


def make_env():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    return sim, clk


# ----------------------------------------------------------------------
# signal-accurate ports
# ----------------------------------------------------------------------
def test_signal_accurate_roundtrip():
    sim, clk = make_env()
    chan = BufferSignal(sim, clk, name="ch", capacity=4)
    out = SignalAccurateOut(chan.enq)
    inp = SignalAccurateIn(chan.deq)
    n = 20
    received = []

    def producer():
        for i in range(n):
            yield from out.push(i)

    def consumer():
        for _ in range(n):
            msg = yield from inp.pop()
            received.append(msg)

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=100_000)
    assert received == list(range(n))


def test_signal_accurate_push_nb_reports_backpressure():
    sim, clk = make_env()
    chan = BufferSignal(sim, clk, name="ch", capacity=1)
    out = SignalAccurateOut(chan.enq)
    outcomes = []

    def producer():
        for i in range(4):
            ok = yield from out.push_nb(i)
            outcomes.append(ok)

    sim.add_thread(producer(), clk, name="p")
    sim.run(until=10_000)
    # Capacity 1 and nobody popping: first push lands, a later one fails.
    assert outcomes[0] is True
    assert False in outcomes


def test_signal_accurate_pop_nb_empty_returns_false():
    sim, clk = make_env()
    chan = BufferSignal(sim, clk, name="ch", capacity=2)
    inp = SignalAccurateIn(chan.deq)
    outcomes = []

    def consumer():
        ok, msg = yield from inp.pop_nb()
        outcomes.append((ok, msg))

    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=1000)
    assert outcomes == [(False, None)]


# ----------------------------------------------------------------------
# sim-accurate helper-thread ports
# ----------------------------------------------------------------------
def test_sim_accurate_roundtrip():
    sim, clk = make_env()
    chan = BufferSignal(sim, clk, name="ch", capacity=4)
    out = SimAccurateOut(sim, clk, chan.enq, name="tx")
    inp = SimAccurateIn(sim, clk, chan.deq, name="rx")
    n = 30
    received = []

    def producer():
        for i in range(n):
            yield from out.push(i)
            yield

    def consumer():
        for _ in range(n):
            msg = yield from inp.pop()
            received.append(msg)
            yield

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=100_000)
    assert received == list(range(n))


def test_sim_accurate_out_to_rtl_consumer():
    """Sim-accurate TX drives plain RTL consumers (cosim bridge)."""
    sim, clk = make_env()
    chan = BufferSignal(sim, clk, name="ch", capacity=4)
    out = SimAccurateOut(sim, clk, chan.enq, name="tx")
    sink = []
    n = 15

    def producer():
        for i in range(n):
            yield from out.push(i)

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(stream_consumer(chan.deq, sink, count=n), clk, name="c")
    sim.run(until=100_000)
    assert sink == list(range(n))


def test_rtl_producer_to_sim_accurate_in():
    sim, clk = make_env()
    chan = BufferSignal(sim, clk, name="ch", capacity=4)
    inp = SimAccurateIn(sim, clk, chan.deq, name="rx")
    n = 15
    received = []

    def consumer():
        for _ in range(n):
            msg = yield from inp.pop()
            received.append(msg)

    sim.add_thread(stream_producer(chan.enq, range(n)), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=100_000)
    assert received == list(range(n))


def test_buffer_depth_validation():
    sim, clk = make_env()
    chan = BufferSignal(sim, clk, name="ch", capacity=2)
    with pytest.raises(ValueError):
        SimAccurateOut(sim, clk, chan.enq, buffer_depth=0)


# ----------------------------------------------------------------------
# the paper's core accuracy claim, in miniature
# ----------------------------------------------------------------------
def _multiport_elapsed(style: str, n_ports: int, iterations: int = 40) -> float:
    """A module touching ``n_ports`` in/out port pairs per iteration.

    Returns elapsed cycles per iteration.  With signal-accurate ports the
    cost grows with ``n_ports``; with sim-accurate ports it stays ~1.
    """
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    in_chans = [BufferSignal(sim, clk, name=f"in{i}", capacity=4)
                for i in range(n_ports)]
    out_chans = [BufferSignal(sim, clk, name=f"out{i}", capacity=4)
                 for i in range(n_ports)]
    if style == "signal":
        ins = [SignalAccurateIn(c.deq) for c in in_chans]
        outs = [SignalAccurateOut(c.enq) for c in out_chans]
    else:
        ins = [SimAccurateIn(sim, clk, c.deq) for c in in_chans]
        outs = [SimAccurateOut(sim, clk, c.enq) for c in out_chans]

    for i, c in enumerate(in_chans):
        sim.add_thread(stream_producer(c.enq, range(iterations)), clk,
                       name=f"src{i}")
    sinks = [[] for _ in range(n_ports)]
    for i, c in enumerate(out_chans):
        sim.add_thread(stream_consumer(c.deq, sinks[i], count=iterations),
                       clk, name=f"dst{i}")

    done = {}

    def dut():
        for _ in range(iterations):
            for i in range(n_ports):
                if style == "signal":
                    msg = yield from ins[i].pop()
                    yield from outs[i].push(msg)
                else:
                    msg = yield from ins[i].pop()
                    yield from outs[i].push(msg)
            yield
        done["cycles"] = clk.cycles

    sim.add_thread(dut(), clk, name="dut")
    sim.run(until=iterations * n_ports * 2000)
    assert all(sink == list(range(iterations)) for sink in sinks)
    return done["cycles"] / iterations


def test_signal_accurate_error_grows_with_ports():
    """Figure 3's mechanism: per-iteration cycles scale with port count
    for the signal-accurate model but not for the sim-accurate model."""
    sa_2 = _multiport_elapsed("signal", 2)
    sa_8 = _multiport_elapsed("signal", 8)
    fast_2 = _multiport_elapsed("sim", 2)
    fast_8 = _multiport_elapsed("sim", 8)
    # Signal-accurate: ~2 cycles per port per iteration.
    assert sa_8 > sa_2 * 2.5
    # Sim-accurate: near-flat in the number of ports.
    assert fast_8 < fast_2 * 2.0
    # And sim-accurate is much faster than signal-accurate at 8 ports.
    assert fast_8 < sa_8 / 3
