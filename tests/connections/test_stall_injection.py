"""Focused stall-injection tests (the section 2.3 verification hook).

The LI contract under test: stall schedules change *when* transfers
happen, never *what* is transferred — across channel kinds, seeds, and
probabilities, including stalls toggled on and off mid-run.
"""

import pytest

from repro.connections import Buffer, Bypass, Combinational, In, Out, Pipeline
from repro.kernel import Simulator


def run_with_stall(factory, probability, seed, n=40):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = factory(sim, clk)
    chan.set_stall(probability, seed=seed)
    out, inp = Out(chan), In(chan)
    received = []
    done = {}

    def producer():
        for i in range(n):
            yield from out.push(i)

    def consumer():
        for _ in range(n):
            received.append((yield from inp.pop()))
        done["time"] = sim.now

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=n * 10_000)
    return received, done.get("time"), chan


@pytest.mark.parametrize("factory", [Combinational, Bypass, Pipeline, Buffer])
@pytest.mark.parametrize("probability", [0.1, 0.5, 0.9])
def test_stalls_never_change_data(factory, probability):
    received, finish, _ = run_with_stall(factory, probability, seed=11)
    assert received == list(range(40))
    assert finish is not None


def test_different_seeds_different_timing_same_data():
    results = [run_with_stall(Buffer, 0.5, seed=s) for s in (1, 2, 3)]
    datas = [r[0] for r in results]
    times = [r[1] for r in results]
    assert all(d == list(range(40)) for d in datas)
    assert len(set(times)) > 1  # schedules actually differ


def test_higher_probability_means_longer_runtime():
    _, t_low, _ = run_with_stall(Buffer, 0.1, seed=4)
    _, t_high, _ = run_with_stall(Buffer, 0.8, seed=4)
    assert t_high > t_low


def test_stall_can_be_disabled_mid_run():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = Buffer(sim, clk, capacity=4)
    chan.set_stall(1.0, seed=1)  # fully stalled
    out, inp = Out(chan), In(chan)
    received = []

    def producer():
        for i in range(10):
            yield from out.push(i)

    def consumer():
        for _ in range(10):
            received.append((yield from inp.pop()))

    def chaos():
        yield 50  # let everything jam for 50 cycles
        assert received == []  # nothing can pass at p=1.0
        chan.set_stall(0.0)

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.add_thread(chaos(), clk, name="x")
    sim.run(until=100_000)
    assert received == list(range(10))


def test_stall_statistics_recorded():
    _, _, chan = run_with_stall(Buffer, 0.5, seed=9)
    assert chan.stats.stall_cycles > 0
    assert chan.stats.transfers == 40
