"""Tests for Packetizer / DePacketizer and int (de)serializers."""

import pytest

from repro.connections import (
    Buffer,
    DePacketizer,
    Flit,
    In,
    Out,
    Packetizer,
    int_deserializer,
    int_serializer,
)
from repro.kernel import Simulator


def test_int_serializer_roundtrip():
    ser = int_serializer(32, 8)
    deser = int_deserializer(32, 8)
    for value in (0, 1, 0xDEADBEEF, 0xFFFFFFFF, 0x12345678):
        flits = ser(value)
        assert len(flits) == 4
        assert all(0 <= f <= 0xFF for f in flits)
        assert deser(flits) == value


def test_int_serializer_non_divisible_width():
    ser = int_serializer(20, 8)  # ceil(20/8) = 3 flits
    deser = int_deserializer(20, 8)
    assert len(ser(0xFFFFF)) == 3
    assert deser(ser(0xABCDE)) == 0xABCDE


def test_int_serializer_validation():
    with pytest.raises(ValueError):
        int_serializer(0, 8)
    with pytest.raises(ValueError):
        int_deserializer(8, 0)


def test_flit_fields():
    f = Flit(seq=2, last=True, payload=0xAB, dest=5)
    assert (f.seq, f.last, f.payload, f.dest) == (2, True, 0xAB, 5)


def packet_pipeline(n_msgs, width=32, flit_width=8):
    """msg -> Packetizer -> flit channel -> DePacketizer -> msg."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    msg_in = Buffer(sim, clk, capacity=4, name="msg_in")
    flit_chan = Buffer(sim, clk, capacity=4, name="flits")
    msg_out = Buffer(sim, clk, capacity=4, name="msg_out")

    pk = Packetizer(sim, clk, serialize=int_serializer(width, flit_width))
    dpk = DePacketizer(sim, clk, deserialize=int_deserializer(width, flit_width))
    pk.msg_in.bind(msg_in)
    pk.flit_out.bind(flit_chan)
    dpk.flit_in.bind(flit_chan)
    dpk.msg_out.bind(msg_out)

    src = Out(msg_in)
    dst = In(msg_out)
    messages = [(0x1000 + i * 0x111) & ((1 << width) - 1) for i in range(n_msgs)]
    received = []

    def producer():
        for m in messages:
            yield from src.push(m)

    def consumer():
        for _ in range(n_msgs):
            m = yield from dst.pop()
            received.append(m)

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=n_msgs * 10_000)
    return messages, received, pk, dpk


def test_packetizer_depacketizer_roundtrip():
    messages, received, pk, dpk = packet_pipeline(10)
    assert received == messages
    assert pk.messages_sent == 10
    assert dpk.messages_received == 10


def test_packetizer_single_flit_messages():
    messages, received, _, _ = packet_pipeline(5, width=8, flit_width=8)
    assert received == messages
