"""Shared ``set_stall`` contract across every channel family.

All stall-capable channels must (a) reject out-of-range probabilities
with a message naming the offending value, and (b) treat
``set_stall(0.0)`` as a full reset back to the pristine state.
"""

import pytest

from repro.connections import Buffer
from repro.connections.rtl_adapter import RtlChannel
from repro.connections.signal_channel import BufferSignal
from repro.kernel import Simulator


def _fast(sim, clk):
    chan = Buffer(sim, clk, capacity=2, name="c")
    return chan, chan


def _signal(sim, clk):
    chan = BufferSignal(sim, clk, capacity=2, name="c")
    return chan, chan


def _rtl(sim, clk):
    chan = RtlChannel(sim, clk, capacity=2, name="c")
    # The adapter delegates to its signal core; the core holds state.
    return chan, chan.core


FAMILIES = [("fast", _fast), ("signal", _signal), ("rtl", _rtl)]


@pytest.fixture(params=FAMILIES, ids=[n for n, _ in FAMILIES])
def channel(request):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    _, build = request.param
    return build(sim, clk)


@pytest.mark.parametrize("bad", [1.5, -0.1])
def test_out_of_range_probability_names_the_value(channel, bad):
    chan, _state = channel
    with pytest.raises(ValueError) as excinfo:
        chan.set_stall(bad)
    assert str(bad) in str(excinfo.value)
    assert "[0,1]" in str(excinfo.value)


def test_set_stall_zero_fully_resets(channel):
    chan, state = channel
    chan.set_stall(0.5, seed=3)
    assert state._stall_probability == 0.5
    assert state._stall_rng is not None
    chan.set_stall(0.0)
    assert state._stall_probability == 0.0
    assert state._stall_rng is None
    assert state._stalled is False


def test_reseeding_restarts_the_stall_sequence(channel):
    chan, state = channel
    chan.set_stall(0.5, seed=7)
    first = [state._stall_rng.random() for _ in range(4)]
    chan.set_stall(0.5, seed=7)
    again = [state._stall_rng.random() for _ in range(4)]
    assert first == again
