"""Cycle-exact resume behaviour of blocking ports at the edge cases."""

from repro.connections import Buffer, In, Out
from repro.kernel import Simulator


def _sim():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    return sim, clk


def test_blocking_pop_resumes_cycle_after_push():
    """A push at edge k is visible to pop at k+1 — not sooner, not later."""
    sim, clk = _sim()
    chan = Buffer(sim, clk, capacity=2, name="c")
    out = Out(chan, name="out")
    inp = In(chan, name="in")
    resumed_at = []

    def producer():
        yield 7  # threads start at cycle 1, so the push fires at cycle 8
        assert clk.cycles == 8
        assert out.push_nb(99)

    def consumer():
        msg = yield from inp.pop()
        resumed_at.append((clk.cycles, msg))

    sim.add_thread(producer(), clk)
    sim.add_thread(consumer(), clk)
    sim.run(until=500)
    assert resumed_at == [(9, 99)]


def test_blocking_push_resumes_cycle_after_freeing_pop():
    """With a full capacity-1 buffer, the blocked push lands exactly one
    cycle after the pop frees a slot (``_occ_start`` frozen semantics)."""
    sim, clk = _sim()
    chan = Buffer(sim, clk, capacity=1, name="c")
    out = Out(chan, name="out")
    inp = In(chan, name="in")
    pushed_at = []
    popped = []

    def producer():
        assert out.push_nb(1)          # fills the only slot at cycle 1
        yield from out.push(2)          # blocks until a slot frees
        pushed_at.append(clk.cycles)

    def consumer():
        yield 5                        # pop fires on cycle 6's edge
        ok, msg = inp.pop_nb()
        assert ok and msg == 1
        popped.append(clk.cycles)
        yield 3
        ok, msg = inp.pop_nb()
        assert ok and msg == 2
        popped.append(clk.cycles)

    sim.add_thread(producer(), clk)
    sim.add_thread(consumer(), clk)
    sim.run(until=500)
    # Start-of-cycle occupancy freezes backpressure: the pop at cycle 6
    # makes room visible at cycle 7, where the blocked push completes.
    assert popped[0] == 6 and pushed_at == [7]
    assert popped[1] == 9


def test_pop_nb_under_full_stall_rejects_then_recovers():
    sim, clk = _sim()
    chan = Buffer(sim, clk, capacity=2, name="c")
    out = Out(chan, name="out")
    inp = In(chan, name="in")
    log = []

    def driver():
        assert out.push_nb(5)
        chan.set_stall(1.0, seed=0)
        yield 2                        # message is in the buffer by now
        for _ in range(4):
            log.append(inp.pop_nb())
            yield
        chan.set_stall(0.0)
        yield
        log.append(inp.pop_nb())

    sim.add_thread(driver(), clk)
    before = chan.stats.pop_rejections
    sim.run(until=500)
    # Every attempt under p=1.0 stall is refused and counted; the first
    # attempt after the reset succeeds with the original message.
    assert log[:4] == [(False, None)] * 4
    assert log[4] == (True, 5)
    assert chan.stats.pop_rejections - before >= 4


def test_watchdog_free_ports_have_no_block_tokens():
    """Without a watchdog attached, blocking ports must not keep any
    block-state; the fast path stays untouched (zero-cost-when-off)."""
    sim, clk = _sim()
    chan = Buffer(sim, clk, capacity=1, name="c")
    out = Out(chan, name="out")
    inp = In(chan, name="in")
    got = []

    def producer():
        for i in range(4):
            yield from out.push(i)

    def consumer():
        for _ in range(4):
            got.append((yield from inp.pop()))

    sim.add_thread(producer(), clk)
    sim.add_thread(consumer(), clk)
    assert getattr(sim, "watchdog", None) is None
    sim.run(until=2_000)
    assert got == [0, 1, 2, 3]
