"""Tests for signal-level (RTL reference) channels and testbench drivers."""

import pytest

from repro.connections import (
    BufferSignal,
    BypassSignal,
    CombinationalSignal,
    PipelineSignal,
    stream_consumer,
    stream_producer,
)
from repro.kernel import Simulator


def make_env():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    return sim, clk


def stream_through(channel_cls, n=40, **kwargs):
    sim, clk = make_env()
    chan = channel_cls(sim, clk, name="ch", **kwargs)
    sink = []
    done = {}
    sim.add_thread(stream_producer(chan.enq, range(n)), clk, name="p")
    sim.add_thread(stream_consumer(chan.deq, sink, count=n, done=done), clk, name="c")
    sim.run(until=n * 500)
    finish_cycles = done["time"] // 10 if "time" in done else None
    return sink, finish_cycles, chan


@pytest.mark.parametrize("cls,kwargs", [
    (BufferSignal, {"capacity": 2}),
    (BufferSignal, {"capacity": 8}),
    (BypassSignal, {"capacity": 1}),
    (PipelineSignal, {"capacity": 1}),
])
def test_queued_channels_deliver_in_order(cls, kwargs):
    sink, _, _ = stream_through(cls, n=40, **kwargs)
    assert sink == list(range(40))


def test_combinational_signal_channel_is_shared_wires():
    sim, clk = make_env()
    chan = CombinationalSignal(sim, clk)
    assert chan.enq is chan.deq
    sink = []
    sim.add_thread(stream_producer(chan.enq, range(20)), clk, name="p")
    sim.add_thread(stream_consumer(chan.deq, sink, count=20), clk, name="c")
    sim.run(until=10_000)
    assert sink == list(range(20))


def test_combinational_full_throughput():
    """Pure wires: one transfer per cycle once both sides are up."""
    sim, clk = make_env()
    chan = CombinationalSignal(sim, clk)
    sink = []
    done = {}
    n = 100
    sim.add_thread(stream_producer(chan.enq, range(n)), clk, name="p")
    sim.add_thread(stream_consumer(chan.deq, sink, count=n, done=done), clk, name="c")
    sim.run(until=n * 100)
    assert sink == list(range(n))
    assert done["time"] // 10 <= n + 5


def test_buffer_signal_throughput_near_one_at_cap2():
    sink, cycles, _ = stream_through(BufferSignal, n=100, capacity=2)
    assert sink == list(range(100))
    assert cycles <= 115  # ~1 msg/cycle plus pipeline fill


def test_buffer_signal_cap1_half_throughput():
    """Registered-ready 1-deep FIFO: known 1/2-throughput behaviour."""
    sink, cycles, _ = stream_through(BufferSignal, n=50, capacity=1)
    assert sink == list(range(50))
    assert 95 <= cycles <= 110  # ~2 cycles per message


def test_bypass_signal_passthrough_when_empty():
    """Bypass latency: first message visible without a buffer cycle."""
    sim, clk = make_env()
    chan = BypassSignal(sim, clk, name="by", capacity=1)
    seen_at = {}

    def producer():
        chan.enq.valid.write(1)
        chan.enq.msg.write("m")
        while True:
            yield
            if chan.enq.ready.read():
                chan.enq.valid.write(0)
                return

    def consumer():
        chan.deq.ready.write(1)
        while True:
            yield
            if chan.deq.valid.read():
                seen_at["cycle"] = clk.cycles
                seen_at["msg"] = chan.deq.msg.read()
                return

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=1000)
    assert seen_at["msg"] == "m"
    # valid cut through combinationally: consumer fires at cycle 2 (first
    # edge after the producer's drive committed), not a buffer-cycle later.
    assert seen_at["cycle"] == 2


def test_pipeline_signal_enq_when_full():
    """Pipeline: a full buffer still accepts when the consumer dequeues."""
    sim, clk = make_env()
    chan = PipelineSignal(sim, clk, name="pi", capacity=1)
    sink = []
    done = {}
    sim.add_thread(stream_producer(chan.enq, range(30)), clk, name="p")
    sim.add_thread(stream_consumer(chan.deq, sink, count=30, done=done), clk, name="c")
    sim.run(until=10_000)
    assert sink == list(range(30))
    # Full throughput even with capacity 1 — the point of the valid cut.
    assert done["time"] // 10 <= 45


def test_pipeline_overflow_is_detected():
    sim, clk = make_env()
    chan = PipelineSignal(sim, clk, name="pi", capacity=1)
    # Force illegal state: enq.ready never consulted by a broken producer.
    chan.queue.append("stale")

    def bad_producer():
        chan.enq.valid.write(1)
        chan.enq.msg.write("x")
        # Force ready high against protocol.
        chan.enq.ready.write(1)
        yield
        chan.enq.ready.write(1)
        yield

    sim.add_thread(bad_producer(), clk, name="bad")
    with pytest.raises(RuntimeError, match="overflow"):
        sim.run(until=1000)


def test_signal_channel_capacity_validation():
    sim, clk = make_env()
    with pytest.raises(ValueError):
        BufferSignal(sim, clk, name="b", capacity=0)


def test_signal_channel_stall_injection_preserves_data():
    sim, clk = make_env()
    chan = BufferSignal(sim, clk, name="st", capacity=4)
    chan.set_stall(0.5, seed=7)
    sink = []
    sim.add_thread(stream_producer(chan.enq, range(30)), clk, name="p")
    sim.add_thread(stream_consumer(chan.deq, sink, count=30), clk, name="c")
    sim.run(until=100_000)
    assert sink == list(range(30))
    assert chan.transfers_out == 30


def test_signal_channel_transfer_counters():
    _, _, chan = stream_through(BufferSignal, n=25, capacity=4)
    assert chan.transfers_in == 25
    assert chan.transfers_out == 25
    assert chan.occupancy == 0
