"""Property-based tests on the LI channel invariants.

The central latency-insensitive guarantee — arbitrary timing (channel
kind, capacity, stalls, producer/consumer pacing) never changes *what*
is delivered or its order — checked with hypothesis across the
parameter space.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.verify.profiles import property_settings

from repro.connections import Buffer, Bypass, Combinational, In, Out, Pipeline
from repro.connections.rtl_adapter import RtlChannel
from repro.kernel import Simulator

_FACTORIES = {
    "Combinational": Combinational,
    "Bypass": Bypass,
    "Pipeline": Pipeline,
    "Buffer": Buffer,
    "Rtl": lambda sim, clk: RtlChannel(sim, clk, capacity=4),
}


def _run_channel(factory_name, messages, stall_prob, stall_seed,
                 producer_gaps, consumer_gaps):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = _FACTORIES[factory_name](sim, clk)
    if stall_prob and hasattr(chan, "set_stall"):
        chan.set_stall(stall_prob, seed=stall_seed)
    out, inp = Out(chan), In(chan)
    received = []

    def producer():
        for i, msg in enumerate(messages):
            yield from out.push(msg)
            for _ in range(producer_gaps[i % len(producer_gaps)]):
                yield

    def consumer():
        for i in range(len(messages)):
            received.append((yield from inp.pop()))
            for _ in range(consumer_gaps[i % len(consumer_gaps)]):
                yield

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=(len(messages) + 1) * 4000)
    return received


@given(
    factory=st.sampled_from(sorted(_FACTORIES)),
    messages=st.lists(st.integers(), min_size=1, max_size=25),
    stall_prob=st.sampled_from([0.0, 0.3, 0.6]),
    stall_seed=st.integers(0, 1000),
    producer_gaps=st.lists(st.integers(0, 3), min_size=1, max_size=4),
    consumer_gaps=st.lists(st.integers(0, 3), min_size=1, max_size=4),
)
@property_settings()
def test_li_delivery_invariant_under_arbitrary_timing(
        factory, messages, stall_prob, stall_seed, producer_gaps,
        consumer_gaps):
    """Any channel kind, any stalls, any pacing: exact in-order delivery."""
    received = _run_channel(factory, messages, stall_prob, stall_seed,
                            producer_gaps, consumer_gaps)
    assert received == messages


@given(
    messages=st.lists(st.integers(), min_size=1, max_size=30),
    capacity=st.integers(1, 6),
)
@property_settings()
def test_buffer_capacity_never_exceeded(messages, capacity):
    """Occupancy invariant: a Buffer never stores more than capacity."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = Buffer(sim, clk, capacity=capacity)
    out, inp = Out(chan), In(chan)
    peak = {"occ": 0}
    clk.on_edge(lambda c: peak.__setitem__(
        "occ", max(peak["occ"], chan.occupancy)))
    received = []

    def producer():
        for msg in messages:
            yield from out.push(msg)

    def consumer():
        for _ in range(len(messages)):
            received.append((yield from inp.pop()))
            yield 2  # slow consumer maximizes occupancy

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=len(messages) * 4000)
    assert received == messages
    assert peak["occ"] <= capacity


@given(
    n_msgs=st.integers(1, 20),
    extra_latency=st.integers(0, 6),
)
@property_settings()
def test_retiming_registers_add_exact_latency(n_msgs, extra_latency):
    """Retiming stages delay first delivery by exactly their count."""
    def first_arrival(latency):
        sim = Simulator()
        clk = sim.add_clock("clk", period=10)
        chan = Buffer(sim, clk, capacity=4, extra_latency=latency)
        out, inp = Out(chan), In(chan)
        arrival = {}

        def producer():
            for i in range(n_msgs):
                yield from out.push(i)

        def consumer():
            while True:
                ok, _ = inp.pop_nb()
                if ok:
                    arrival.setdefault("cycle", clk.cycles)
                    return
                yield

        sim.add_thread(producer(), clk, name="p")
        sim.add_thread(consumer(), clk, name="c")
        sim.run(until=200_000)
        return arrival["cycle"]

    assert first_arrival(extra_latency) == first_arrival(0) + extra_latency
