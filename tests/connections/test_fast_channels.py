"""Tests for the fast (sim-accurate) channel core and In/Out ports."""

import pytest

from repro.connections import Buffer, Bypass, Combinational, In, Out, Pipeline, PortError
from repro.kernel import Simulator


def make_env(period=10):
    sim = Simulator()
    clk = sim.add_clock("clk", period=period)
    return sim, clk


def run_stream(channel_factory, n_msgs=50, consumer_stall=0, capacity_kwargs=None):
    """Push n messages through a channel; return (received, elapsed_cycles)."""
    sim, clk = make_env()
    chan = channel_factory(sim, clk, **(capacity_kwargs or {}))
    out, inp = Out(chan), In(chan)
    received = []
    done = {}

    def producer():
        for i in range(n_msgs):
            yield from out.push(i)
            yield

    def consumer():
        while len(received) < n_msgs:
            ok, msg = inp.pop_nb()
            if ok:
                received.append(msg)
            for _ in range(consumer_stall):
                yield
            yield
        done["cycles"] = clk.cycles

    sim.add_thread(producer(), clk, name="prod")
    sim.add_thread(consumer(), clk, name="cons")
    sim.run(until=n_msgs * 400)
    return received, done.get("cycles")


@pytest.mark.parametrize("factory", [Combinational, Bypass, Pipeline, Buffer])
def test_all_kinds_deliver_in_order(factory):
    received, cycles = run_stream(factory)
    assert received == list(range(50))
    assert cycles is not None


@pytest.mark.parametrize("factory", [Combinational, Bypass, Pipeline, Buffer])
def test_all_kinds_survive_slow_consumer(factory):
    received, _ = run_stream(factory, n_msgs=20, consumer_stall=3)
    assert received == list(range(20))


def test_buffer_respects_capacity():
    sim, clk = make_env()
    chan = Buffer(sim, clk, capacity=4)
    out = Out(chan)

    def producer():
        accepted = 0
        for i in range(10):
            if out.push_nb(i):
                accepted += 1
            yield
        assert accepted == 4  # nobody pops; capacity caps acceptance

    sim.add_thread(producer(), clk, name="prod")
    sim.run(until=1000)
    assert chan.occupancy == 4


def test_one_push_per_cycle_limit():
    sim, clk = make_env()
    chan = Buffer(sim, clk, capacity=8)
    out = Out(chan)
    results = []

    def producer():
        results.append(out.push_nb("a"))
        results.append(out.push_nb("b"))  # same cycle: must fail
        yield

    sim.add_thread(producer(), clk, name="prod")
    sim.run(until=100)
    assert results == [True, False]


def test_one_pop_per_cycle_limit():
    sim, clk = make_env()
    chan = Buffer(sim, clk, capacity=8)
    out, inp = Out(chan), In(chan)
    popped = []

    def producer():
        out.push_nb(1)
        out.push_nb(2)  # fails; retry next cycle
        yield
        out.push_nb(2)
        yield

    def consumer():
        yield 3  # wait for both to land
        popped.append(inp.pop_nb())
        popped.append(inp.pop_nb())  # same cycle: must fail

    sim.add_thread(producer(), clk, name="prod")
    sim.add_thread(consumer(), clk, name="cons")
    sim.run(until=200)
    assert popped[0] == (True, 1)
    assert popped[1][0] is False


def test_push_visible_next_cycle_not_same_cycle():
    sim, clk = make_env()
    chan = Buffer(sim, clk, capacity=8)
    out, inp = Out(chan), In(chan)
    log = []

    def both():
        out.push_nb("x")
        log.append(inp.pop_nb())  # same cycle: not yet visible
        yield
        log.append(inp.pop_nb())  # next cycle: visible

    sim.add_thread(both(), clk, name="t")
    sim.run(until=100)
    assert log[0][0] is False
    assert log[1] == (True, "x")


def test_extra_latency_delays_delivery():
    sim, clk = make_env()
    chan = Buffer(sim, clk, capacity=8, extra_latency=3)
    out, inp = Out(chan), In(chan)
    arrival = {}

    def producer():
        out.push_nb("m")
        yield

    def consumer():
        while True:
            ok, _ = inp.pop_nb()
            if ok:
                arrival["cycle"] = clk.cycles
                return
            yield

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=1000)
    # Push at cycle 1 (first edge), visible at 1 + 1 + 3 = cycle 5.
    assert arrival["cycle"] == 5


def test_buffer_full_throughput_with_capacity_2():
    """Steady-state: one message per cycle through a Buffer(2)."""
    sim, clk = make_env()
    chan = Buffer(sim, clk, capacity=2)
    out, inp = Out(chan), In(chan)
    n = 100
    received = []
    t = {}

    def producer():
        for i in range(n):
            yield from out.push(i)

    def consumer():
        t["start"] = clk.cycles
        while len(received) < n:
            ok, msg = inp.pop_nb()
            if ok:
                received.append(msg)
            yield
        t["end"] = clk.cycles

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=n * 100)
    assert received == list(range(n))
    cycles_per_msg = (t["end"] - t["start"]) / n
    assert cycles_per_msg < 1.15  # ~1 msg/cycle steady state


def test_peek_does_not_consume():
    sim, clk = make_env()
    chan = Buffer(sim, clk, capacity=4)
    out, inp = Out(chan), In(chan)
    log = []

    def t():
        out.push_nb(7)
        yield
        log.append(inp.peek_nb())
        log.append(inp.peek_nb())
        log.append(inp.pop_nb())

    sim.add_thread(t(), clk, name="t")
    sim.run(until=100)
    assert log == [(True, 7), (True, 7), (True, 7)]
    assert chan.occupancy == 0


def test_port_double_bind_rejected():
    sim, clk = make_env()
    chan = Buffer(sim, clk)
    port = Out(chan)
    with pytest.raises(PortError):
        port.bind(chan)


def test_unbound_port_rejected():
    port = In(name="loose")
    with pytest.raises(PortError):
        port.pop_nb()


def test_invalid_capacity_rejected():
    sim, clk = make_env()
    with pytest.raises(ValueError):
        Buffer(sim, clk, capacity=0)


def test_channel_stats_count_transfers():
    received, _ = run_stream(Buffer, n_msgs=30)
    assert received == list(range(30))


def test_stall_injection_preserves_functionality():
    """The central LI property: stalls change timing, never data."""
    sim, clk = make_env()
    chan = Buffer(sim, clk, capacity=4)
    chan.set_stall(0.5, seed=42)
    out, inp = Out(chan), In(chan)
    n = 40
    received = []

    def producer():
        for i in range(n):
            yield from out.push(i)

    def consumer():
        for _ in range(n):
            msg = yield from inp.pop()
            received.append(msg)

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=n * 1000)
    assert received == list(range(n))
    assert chan.stats.stall_cycles > 0


def test_stall_slows_down_delivery():
    _, cycles_free = run_stream(Buffer, n_msgs=50)

    sim, clk = make_env()
    chan = Buffer(sim, clk, capacity=8)
    chan.set_stall(0.7, seed=1)
    out, inp = Out(chan), In(chan)
    received = []
    done = {}

    def producer():
        for i in range(50):
            yield from out.push(i)

    def consumer():
        for _ in range(50):
            msg = yield from inp.pop()
            received.append(msg)
        done["cycles"] = clk.cycles

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=500_000)
    assert received == list(range(50))
    assert done["cycles"] > cycles_free


def test_stall_probability_validation():
    sim, clk = make_env()
    chan = Buffer(sim, clk)
    with pytest.raises(ValueError):
        chan.set_stall(1.5)
