"""Direct tests for the RTL-cosimulation channel adapter."""

import pytest

from repro.connections import Buffer, In, Out, RtlChannel
from repro.kernel import Simulator


def make_env():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    return sim, clk


def stream(chan_factory, n=30, consumer_stall=0):
    sim, clk = make_env()
    chan = chan_factory(sim, clk)
    out, inp = Out(chan), In(chan)
    received = []
    done = {}

    def producer():
        for i in range(n):
            yield from out.push(i)

    def consumer():
        for _ in range(n):
            received.append((yield from inp.pop()))
            for _ in range(consumer_stall):
                yield
        done["time"] = sim.now

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=n * 4000)
    return received, done


def test_rtl_channel_delivers_in_order():
    received, done = stream(lambda s, c: RtlChannel(s, c))
    assert received == list(range(30))
    assert "time" in done


def test_rtl_channel_slower_consumer_backpressures():
    received, _ = stream(lambda s, c: RtlChannel(s, c), consumer_stall=3)
    assert received == list(range(30))


def test_rtl_channel_has_more_latency_than_fast_buffer():
    """The deliberate pipeline-latency difference behind Figure 6's
    elapsed-cycle error."""
    _, done_fast = stream(lambda s, c: Buffer(s, c, capacity=4), n=20)
    _, done_rtl = stream(lambda s, c: RtlChannel(s, c), n=20)
    assert done_rtl["time"] > done_fast["time"]


def test_rtl_channel_one_push_pop_per_cycle():
    sim, clk = make_env()
    chan = RtlChannel(sim, clk)
    log = []

    def t():
        log.append(chan.do_push("a"))
        log.append(chan.do_push("b"))  # same cycle: rejected
        yield

    sim.add_thread(t(), clk, name="t")
    sim.run(until=1000)
    assert log == [True, False]


def test_rtl_channel_peek_and_stall_delegation():
    sim, clk = make_env()
    chan = RtlChannel(sim, clk)
    chan.set_stall(0.4, seed=3)  # delegates to the signal core
    out, inp = Out(chan), In(chan)
    received = []

    def producer():
        for i in range(15):
            yield from out.push(i)

    def consumer():
        while len(received) < 15:
            ok, head = inp.peek_nb()
            if ok:
                ok2, msg = inp.pop_nb()
                assert ok2 and msg == head
                received.append(msg)
            yield

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=500_000)
    assert received == list(range(15))
    assert chan.core._stall_probability == 0.4


def test_rtl_channel_validation():
    sim, clk = make_env()
    with pytest.raises(ValueError):
        RtlChannel(sim, clk, buffer_depth=0)
