"""Tests for flits, XY routing, routers, and mesh delivery."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.verify.profiles import property_settings

from repro.kernel import Simulator
from repro.noc import (
    Mesh,
    NocFlit,
    Port,
    make_packet,
    node_xy,
    packet_payloads,
    xy_node,
    xy_route,
)


# ----------------------------------------------------------------------
# flits and packets
# ----------------------------------------------------------------------
def test_make_packet_framing():
    flits = make_packet(src=1, dest=2, payloads=["a", "b", "c"])
    assert flits[0].is_head and not flits[0].is_tail
    assert flits[-1].is_tail and not flits[-1].is_head
    assert [f.seq for f in flits] == [0, 1, 2]
    assert packet_payloads(flits) == ["a", "b", "c"]


def test_single_flit_packet_is_head_and_tail():
    (flit,) = make_packet(src=0, dest=1, payloads=["x"])
    assert flit.is_head and flit.is_tail


def test_packet_validation():
    with pytest.raises(ValueError):
        make_packet(src=0, dest=1, payloads=[])
    with pytest.raises(ValueError):
        make_packet(src=0, dest=1, payloads=["x"], vc=-1)
    flits = make_packet(src=0, dest=1, payloads=["a", "b"])
    with pytest.raises(ValueError):
        packet_payloads(flits[1:])
    with pytest.raises(ValueError):
        packet_payloads(list(reversed(flits)))


# ----------------------------------------------------------------------
# XY routing
# ----------------------------------------------------------------------
def test_node_xy_roundtrip():
    for node in range(12):
        x, y = node_xy(node, 4)
        assert xy_node(x, y, 4) == node


def test_xy_route_directions():
    # 4-wide mesh; node 5 = (1, 1).
    assert xy_route(5, 5, 4) == Port.LOCAL
    assert xy_route(5, 6, 4) == Port.EAST
    assert xy_route(5, 4, 4) == Port.WEST
    assert xy_route(5, 9, 4) == Port.NORTH
    assert xy_route(5, 1, 4) == Port.SOUTH
    # X resolves before Y.
    assert xy_route(5, 10, 4) == Port.EAST


@given(st.integers(0, 15), st.integers(0, 15))
@property_settings()
def test_xy_route_always_makes_progress(src, dest):
    """Following XY routing hop by hop always reaches the destination."""
    width = 4
    current = src
    for _ in range(10):
        port = xy_route(current, dest, width)
        if port == Port.LOCAL:
            break
        x, y = node_xy(current, width)
        if port == Port.EAST:
            x += 1
        elif port == Port.WEST:
            x -= 1
        elif port == Port.NORTH:
            y += 1
        else:
            y -= 1
        current = xy_node(x, y, width)
    assert current == dest


# ----------------------------------------------------------------------
# mesh delivery, both router types
# ----------------------------------------------------------------------
def run_mesh(router, sends, *, width=3, height=3, until=300_000, **kw):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=width, height=height, router=router, **kw)
    for src, dest, payloads in sends:
        mesh.ni(src).send(dest, payloads)
    expected = sum(1 for _ in sends)

    def all_arrived():
        return sum(ni.messages_received for ni in mesh.nis) >= expected

    steps = 0
    while not all_arrived() and steps < until:
        sim.run(max_steps=100)
        steps += 100
    return mesh, sim


@pytest.mark.parametrize("router", ["whvc", "sf"])
def test_single_message_crosses_mesh(router):
    mesh, _ = run_mesh(router, [(0, 8, ["p0", "p1", "p2"])])
    assert mesh.ni(8).received == [(0, ["p0", "p1", "p2"])]


@pytest.mark.parametrize("router", ["whvc", "sf"])
def test_self_delivery(router):
    mesh, _ = run_mesh(router, [(4, 4, ["self"])])
    assert mesh.ni(4).received == [(4, ["self"])]


@pytest.mark.parametrize("router", ["whvc", "sf"])
def test_all_to_one_congestion(router):
    sends = [(src, 4, [f"m{src}"]) for src in range(9) if src != 4]
    mesh, _ = run_mesh(router, sends)
    got = sorted(p[0] for _, p in mesh.ni(4).received)
    assert got == sorted(f"m{s}" for s in range(9) if s != 4)


def test_random_traffic_all_delivered_whvc():
    rng = random.Random(7)
    sends = []
    for i in range(40):
        src = rng.randrange(9)
        dest = rng.randrange(9)
        sends.append((src, dest, [f"msg{i}_{j}" for j in range(rng.randint(1, 4))]))
    mesh, _ = run_mesh("whvc", sends)
    delivered = sum(ni.messages_received for ni in mesh.nis)
    assert delivered == 40
    # Payload integrity across all receivers.
    all_got = {tuple(p) for ni in mesh.nis for _, p in ni.received}
    all_sent = {tuple(p) for _, _, p in sends}
    assert all_got == all_sent


def test_per_source_ordering_preserved_whvc():
    """Same src->dest stream stays in order (single path, FIFO links)."""
    sends = [(0, 8, [f"s{i}"]) for i in range(10)]
    mesh, _ = run_mesh("whvc", sends)
    payloads = [p[0] for _, p in mesh.ni(8).received]
    assert payloads == [f"s{i}" for i in range(10)]


def test_vcs_let_traffic_interleave():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=3, height=1, n_vcs=2)
    # Two long packets from node 0, different VCs, different destinations.
    mesh.ni(0).send(1, [f"a{i}" for i in range(6)], vc=0)
    mesh.ni(0).send(2, [f"b{i}" for i in range(6)], vc=1)
    sim.run(until=50_000)
    assert mesh.ni(1).received == [(0, [f"a{i}" for i in range(6)])]
    assert mesh.ni(2).received == [(0, [f"b{i}" for i in range(6)])]


def test_wormhole_beats_store_and_forward_on_latency():
    """Multi-hop long packet: wormhole pipelines flits across hops."""
    payloads = [f"p{i}" for i in range(8)]

    def latency(router):
        sim = Simulator()
        clk = sim.add_clock("clk", period=10)
        mesh = Mesh(sim, clk, width=4, height=1, router=router)
        mesh.ni(0).send(3, payloads)
        sim.run(until=500_000)
        assert mesh.ni(3).received == [(0, payloads)]
        return mesh.ni(3).last_arrival_time

    assert latency("whvc") < latency("sf")


def test_mesh_validation():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with pytest.raises(ValueError):
        Mesh(sim, clk, width=0, height=2)
    with pytest.raises(ValueError):
        Mesh(sim, clk, width=2, height=2, router="hypercube")


def test_router_stats_count_flits():
    mesh, _ = run_mesh("whvc", [(0, 8, ["a", "b"])])
    # 0 -> 8 on a 3x3 mesh: 4 hops + ejection; 2 flits each.
    assert mesh.total_flits_forwarded >= 8
