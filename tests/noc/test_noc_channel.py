"""Tests for LI channels transported over the NoC (section 2.3).

The paper's polymorphism claim: the *same* producer/consumer code runs
over a direct channel or over the network, chosen at integration time.
"""

import pytest

from repro.connections import Buffer, In, Out
from repro.kernel import Simulator
from repro.noc import Mesh, NocChannel, NocChannelDemux


def make_mesh_channel(*, depth=4, src=0, dst=8):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=3, height=3)
    demux_src = NocChannelDemux(mesh.ni(src))
    demux_dst = NocChannelDemux(mesh.ni(dst))
    chan = NocChannel(sim, mesh, chan_id=1, src_demux=demux_src,
                      dst_demux=demux_dst, depth=depth)
    return sim, clk, mesh, chan, demux_src, demux_dst


def producer_consumer(sim, clk, chan, n):
    """The *same* code that drives a direct Buffer channel."""
    out, inp = Out(chan), In(chan)
    received = []
    done = {}

    def producer():
        for i in range(n):
            yield from out.push(i)

    def consumer():
        for _ in range(n):
            received.append((yield from inp.pop()))
        done["time"] = sim.now

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=n * 20_000)
    return received, done


def test_noc_channel_delivers_in_order():
    sim, clk, _, chan, _, _ = make_mesh_channel()
    received, done = producer_consumer(sim, clk, chan, 40)
    assert received == list(range(40))
    assert chan.transfers == 40
    assert "time" in done


def test_noc_channel_same_code_as_direct_channel():
    """Byte-identical producer/consumer over Buffer and over the mesh."""
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    direct = Buffer(sim, clk, capacity=4)
    received_direct, _ = producer_consumer(sim, clk, direct, 25)

    sim2, clk2, _, noc_chan, _, _ = make_mesh_channel()
    received_noc, _ = producer_consumer(sim2, clk2, noc_chan, 25)
    assert received_direct == received_noc == list(range(25))


def test_noc_channel_credit_flow_control_bounds_inflight():
    """A stalled consumer cannot be flooded: credits bound the traffic."""
    sim, clk, mesh, chan, _, _ = make_mesh_channel(depth=3)
    out = Out(chan)

    def producer():
        for i in range(20):
            yield from out.push(i)

    sim.add_thread(producer(), clk, name="p")
    sim.run(until=200_000)  # nobody pops
    # At most depth messages crossed; at most depth wait in tx.
    assert len(chan._rx) <= 3
    assert chan._credits == 0


def test_noc_channel_credits_replenish():
    sim, clk, _, chan, _, _ = make_mesh_channel(depth=2)
    received, _ = producer_consumer(sim, clk, chan, 30)
    assert received == list(range(30))
    sim.run(until=sim.now + 50_000)  # let final credits fly home
    assert chan._credits == 2


def test_two_channels_share_nodes_via_demux():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=3, height=1)
    d0 = NocChannelDemux(mesh.ni(0))
    d2 = NocChannelDemux(mesh.ni(2))
    chan_a = NocChannel(sim, mesh, chan_id=1, src_demux=d0, dst_demux=d2,
                        name="a")
    chan_b = NocChannel(sim, mesh, chan_id=2, src_demux=d0, dst_demux=d2,
                        name="b")
    out_a, in_a = Out(chan_a), In(chan_a)
    out_b, in_b = Out(chan_b), In(chan_b)
    got = {"a": [], "b": []}

    def producer():
        for i in range(10):
            yield from out_a.push(("a", i))
            yield from out_b.push(("b", i))

    def consumer():
        while len(got["a"]) < 10 or len(got["b"]) < 10:
            ok, msg = in_a.pop_nb()
            if ok:
                got["a"].append(msg)
            ok, msg = in_b.pop_nb()
            if ok:
                got["b"].append(msg)
            yield

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=1_000_000)
    assert got["a"] == [("a", i) for i in range(10)]
    assert got["b"] == [("b", i) for i in range(10)]


def test_demux_rejects_duplicate_and_unknown_ids():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=2, height=1)
    d0 = NocChannelDemux(mesh.ni(0))
    d1 = NocChannelDemux(mesh.ni(1))
    NocChannel(sim, mesh, chan_id=1, src_demux=d0, dst_demux=d1)
    with pytest.raises(ValueError):
        NocChannel(sim, mesh, chan_id=1, src_demux=d0, dst_demux=d1)
    mesh.ni(1).send(0, [99, "stray"])  # unknown id at node 0
    with pytest.raises(ValueError, match="unknown channel id"):
        sim.run(until=100_000)


def test_noc_channel_validation():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=2, height=1)
    d0, d1 = NocChannelDemux(mesh.ni(0)), NocChannelDemux(mesh.ni(1))
    with pytest.raises(ValueError):
        NocChannel(sim, mesh, chan_id=1, src_demux=d0, dst_demux=d1, depth=0)
