"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "productivity" in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_gals_command(capsys):
    assert main(["gals"]) == 0
    out = capsys.readouterr().out
    assert "testchip chip-level GALS overhead" in out


def test_backend_command(capsys):
    assert main(["backend"]) == 0
    out = capsys.readouterr().out
    assert "turnaround" in out and "flat flow" in out


def test_productivity_command(capsys):
    assert main(["productivity"]) == 0
    out = capsys.readouterr().out
    assert "OOHLS" in out and "hand RTL" in out


def test_hls_qor_command(capsys):
    assert main(["hls-qor"]) == 0
    out = capsys.readouterr().out
    assert "worst |delta|" in out


def test_fig3_command_tiny(capsys):
    assert main(["fig3", "--ports", "2", "--txns", "10"]) == 0
    out = capsys.readouterr().out
    assert "cycles per transaction" in out


def test_adaptive_clocking_command(capsys):
    assert main(["adaptive-clocking"]) == 0
    assert "throughput gain" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_stats_command_prints_telemetry_report(capsys):
    assert main(["stats", "fig3", "--ports", "2", "--txns", "5"]) == 0
    out = capsys.readouterr().out
    assert "cycles per transaction" in out        # the experiment output
    assert "telemetry report — fig3" in out       # plus the stats report
    assert "events fired" in out
    assert "valid-but-not-ready" in out
    assert "clock domains" in out


def test_stats_command_writes_jsonl(tmp_path, capsys):
    path = tmp_path / "report.jsonl"
    assert main(["stats", "fig3", "--ports", "2", "--txns", "5",
                 "--json", str(path)]) == 0
    from repro.observe import from_records, read_jsonl

    with open(path) as fh:
        report = from_records(read_jsonl(fh))
    assert report.label == "fig3"
    assert report.kernel["events_fired"] > 0
    assert report.channels and report.clocks


def test_trace_vcd_flag_writes_gtkwave_file(tmp_path, capsys):
    path = tmp_path / "out.vcd"
    assert main(["fig3", "--ports", "2", "--txns", "5",
                 "--trace-vcd", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"wrote {path}" in out
    text = path.read_text()
    assert text.startswith("$timescale")
    assert "$var wire" in text and "$enddefinitions $end" in text
    assert "#" in text  # at least one timestamped change block


def test_stats_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["stats", "frobnicate"])


def test_inspect_prints_hierarchy_tree(capsys):
    assert main(["inspect", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "xbar" in out and "ports bound" in out


def test_inspect_fig6_respects_max_depth(capsys):
    assert main(["inspect", "fig6", "--max-depth", "2"]) == 0
    out = capsys.readouterr().out
    assert "chip" in out and "mesh" in out
    assert "more" in out  # depth-3 routers truncated


def test_inspect_no_channels_flag(capsys):
    assert main(["inspect", "fig3", "--no-channels"]) == 0
    assert "Buffer" not in capsys.readouterr().out


def test_inspect_analytic_experiment_is_a_noop(capsys):
    assert main(["inspect", "backend"]) == 0
    assert "analytic" in capsys.readouterr().out


def test_lint_clean_experiment_exits_zero(capsys):
    assert main(["lint", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "fig3: clean: 0 findings" in out


def test_lint_accepts_rule_subset(capsys):
    assert main(["lint", "stalls", "--rules", "unbound-port"]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_analytic_experiment_exits_zero(capsys):
    assert main(["lint", "productivity"]) == 0
    assert "analytic" in capsys.readouterr().out


def test_inspect_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["inspect", "frobnicate"])


# ----------------------------------------------------------------------
# sweep verb, --seed, --json (PR 4)
# ----------------------------------------------------------------------
def test_sweep_command_runs_and_reports_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["sweep", "stall_verification", "--jobs", "1", "--limit", "4",
            "--cache-dir", cache_dir]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "sweep stall_verification" in cold
    assert "0 hits / 4 misses" in cold

    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "4 hits / 0 misses" in warm
    assert "100% hit rate" in warm


def test_sweep_command_writes_json_payload(tmp_path, capsys):
    import json

    out_path = str(tmp_path / "sweep.json")
    assert main(["sweep", "gals_overhead", "--jobs", "1", "--no-cache",
                 "--json", out_path]) == 0
    with open(out_path) as fh:
        payload = json.load(fh)
    assert payload["experiment"] == "gals_overhead"
    assert payload["errors"] == 0
    assert len(payload["statuses"]) == len(payload["points"])
    assert len(payload["results"]) == len(payload["points"])


def test_sweep_no_cache_never_touches_disk(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main(["sweep", "crossbar_qor", "--jobs", "1", "--no-cache",
                 "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "hit rate" not in out  # no cache stats line when disabled
    assert not cache_dir.exists()


def test_sweep_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["sweep", "frobnicate"])


def test_list_advertises_sweep_experiments(capsys):
    assert main(["list"]) == 0
    assert "sweep <experiment>" in capsys.readouterr().out


def test_seed_flag_reproduces_stall_campaign(capsys):
    assert main(["stalls", "--seed", "7"]) == 0
    a = capsys.readouterr().out
    assert main(["stalls", "--seed", "7"]) == 0
    assert capsys.readouterr().out == a  # same seed, same table


def test_json_flag_dumps_experiment_payload(tmp_path, capsys):
    import json

    out_path = str(tmp_path / "fig3.json")
    assert main(["fig3", "--ports", "2", "--txns", "5",
                 "--json", out_path]) == 0
    with open(out_path) as fh:
        points = json.load(fh)
    assert isinstance(points, list) and points
    assert points[0]["n_ports"] == 2


# ----------------------------------------------------------------------
# incremental sweep, li-latency verb, stats --cache (PR 7)
# ----------------------------------------------------------------------
def test_sweep_incremental_reports_derived_points(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["sweep", "li_latency", "--incremental", "--jobs", "1",
            "--limit", "6", "--cache-dir", cache_dir]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "6 derived / 0 simulated (+1 captures)" in cold
    assert "fallbacks to full simulation" not in cold

    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "6 cached / 0 derived" in warm
    assert "recompute saved" in warm


def test_sweep_incremental_reports_fallbacks(tmp_path, capsys):
    assert main(["sweep", "stall_verification", "--incremental",
                 "--jobs", "1", "--limit", "2",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "fallbacks to full simulation:" in out
    assert "pop_nb" in out


def test_li_latency_command(capsys):
    assert main(["li-latency"]) == 0
    out = capsys.readouterr().out
    assert "cycles/msg" in out


def test_stats_cache_prints_cache_block(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["sweep", "li_latency", "--incremental", "--jobs", "1",
                 "--limit", "4", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["stats", "--cache", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "sweep cache" in out and "lifetime:" in out
    assert "derived" in out and "trace" in out


def test_stats_without_experiment_or_cache_rejected():
    with pytest.raises(SystemExit):
        main(["stats"])
