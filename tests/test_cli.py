"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "productivity" in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_gals_command(capsys):
    assert main(["gals"]) == 0
    out = capsys.readouterr().out
    assert "testchip chip-level GALS overhead" in out


def test_backend_command(capsys):
    assert main(["backend"]) == 0
    out = capsys.readouterr().out
    assert "turnaround" in out and "flat flow" in out


def test_productivity_command(capsys):
    assert main(["productivity"]) == 0
    out = capsys.readouterr().out
    assert "OOHLS" in out and "hand RTL" in out


def test_hls_qor_command(capsys):
    assert main(["hls-qor"]) == 0
    out = capsys.readouterr().out
    assert "worst |delta|" in out


def test_fig3_command_tiny(capsys):
    assert main(["fig3", "--ports", "2", "--txns", "10"]) == 0
    out = capsys.readouterr().out
    assert "cycles per transaction" in out


def test_adaptive_clocking_command(capsys):
    assert main(["adaptive-clocking"]) == 0
    assert "throughput gain" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
