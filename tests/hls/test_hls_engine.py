"""Tests for the HLS engine: IR, scheduling, binding, area."""

import pytest

from repro.hls import (
    DEFAULT_TECH,
    DataflowGraph,
    IRError,
    adder_tree_design,
    alu_design,
    crossbar_dst_loop_design,
    crossbar_src_loop_design,
    estimate_area,
    fir_design,
    hand_rtl_area,
    schedule,
    vector_mac_design,
)


# ----------------------------------------------------------------------
# IR
# ----------------------------------------------------------------------
def test_ir_build_and_topo():
    g = DataflowGraph("t")
    g.add("a", "input", 8)
    g.add("b", "input", 8)
    g.add("s", "add", 8, ["a", "b"])
    g.add("o", "output", 8, ["s"])
    order = g.topo_order()
    assert order.index("s") > order.index("a")
    assert order.index("o") > order.index("s")
    assert g.count("add") == 1
    assert len(g) == 4


def test_ir_rejects_duplicates_unknowns_cycles():
    g = DataflowGraph("t")
    g.add("a", "input", 8)
    with pytest.raises(IRError):
        g.add("a", "input", 8)
    with pytest.raises(IRError):
        g.add("bad", "frobnicate", 8)
    with pytest.raises(IRError):
        g.add("w", "add", 0, [])
    g.add("x", "add", 8, ["a", "ghost"])
    with pytest.raises(IRError):
        g.topo_order()


def test_ir_cycle_detection():
    g = DataflowGraph("t")
    g.add("x", "add", 8, ["y"])
    g.add("y", "add", 8, ["x"])
    with pytest.raises(IRError):
        g.topo_order()


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------
def test_single_add_fits_one_cycle():
    g = DataflowGraph("t")
    g.add("a", "input", 32)
    g.add("b", "input", 32)
    g.add("s", "add", 32, ["a", "b"])
    g.add("o", "output", 32, ["s"])
    sched = schedule(g, clock_period_ps=900)
    assert sched.latency == 1
    assert sched.cycle["s"] == 0


def test_long_chain_gets_pipelined():
    g = DataflowGraph("chain")
    prev = g.add("in", "input", 32)
    for i in range(40):
        c = g.add(f"k{i}", "const", 32)
        prev = g.add(f"a{i}", "add", 32, [prev, c])
    g.add("o", "output", 32, [prev])
    sched = schedule(g, clock_period_ps=900)
    # 40 chained 32-bit adds cannot fit one 900 ps cycle.
    assert sched.latency > 1
    # Cycles must be monotone along the chain.
    cycles = [sched.cycle[f"a{i}"] for i in range(40)]
    assert cycles == sorted(cycles)


def test_critical_path_respects_budget():
    g = adder_tree_design(32, 32)
    sched = schedule(g, clock_period_ps=900)
    assert sched.critical_path_ps <= DEFAULT_TECH.usable_period_ps(900)


def test_faster_clock_means_more_cycles():
    g = adder_tree_design(64, 32)
    slow = schedule(g, clock_period_ps=2000)
    fast = schedule(g, clock_period_ps=500)
    assert fast.latency >= slow.latency


def test_oversized_op_rejected():
    g = DataflowGraph("t")
    g.add("a", "input", 64)
    g.add("b", "input", 64)
    g.add("m", "mul", 64, ["a", "b"])
    with pytest.raises(IRError):
        schedule(g, clock_period_ps=120)


def test_resource_limit_serializes_ops():
    g = vector_mac_design(8, 16)
    free = schedule(g, clock_period_ps=2000)
    limited = schedule(g, clock_period_ps=2000, resource_limits={"mul": 2})
    assert limited.concurrency("mul") <= 2
    assert limited.latency >= free.latency
    assert free.concurrency("mul") == 8


def test_invalid_clock_rejected():
    g = adder_tree_design(4, 8)
    with pytest.raises(ValueError):
        schedule(g, clock_period_ps=30)  # below sequencing overhead


# ----------------------------------------------------------------------
# area estimation
# ----------------------------------------------------------------------
def test_area_breakdown_positive_and_consistent():
    g = vector_mac_design(8, 16)
    rpt = estimate_area(schedule(g, clock_period_ps=900))
    assert rpt.fu_area > 0
    assert rpt.total == pytest.approx(
        rpt.fu_area + rpt.mux_area + rpt.reg_area + rpt.ctrl_area)


def test_sharing_reduces_fu_area_adds_muxes():
    g = vector_mac_design(8, 16)
    sched = schedule(g, clock_period_ps=2000, resource_limits={"mul": 2})
    shared = estimate_area(sched, share=True)
    spatial = estimate_area(sched, share=False)
    assert shared.fu_area < spatial.fu_area
    assert shared.mux_area > 0


def test_pipelined_registers_cost_more():
    g = fir_design(16, 16)
    sched = schedule(g, clock_period_ps=500)
    assert sched.latency > 1
    nonpipe = estimate_area(sched, pipelined=False)
    pipe = estimate_area(sched, pipelined=True)
    assert pipe.reg_area > nonpipe.reg_area


def test_single_cycle_design_has_no_control_area():
    g = alu_design(32)
    rpt = estimate_area(schedule(g, clock_period_ps=2000))
    assert rpt.latency == 1
    assert rpt.ctrl_area == 0.0
    assert rpt.reg_area == 0.0


def test_report_to_text():
    g = alu_design(8)
    rpt = estimate_area(schedule(g, clock_period_ps=2000))
    text = rpt.to_text()
    assert "NAND2-eq" in text and "latency" in text


# ----------------------------------------------------------------------
# the section 2.4 case study
# ----------------------------------------------------------------------
def test_crossbar_functional_designs_have_expected_shape():
    gd = crossbar_dst_loop_design(8, 32)
    gs = crossbar_src_loop_design(8, 32)
    # dst-loop: (N-1) muxes per output, no comparators.
    assert gd.count("mux2") == 8 * 7
    assert gd.count("eq") == 0
    # src-loop: N muxes and N comparators per output.
    assert gs.count("mux2") == 8 * 8
    assert gs.count("eq") == 8 * 8


def test_src_loop_area_penalty_at_paper_config():
    """32-lane 32-bit crossbar at 1.1 GHz: src-loop costs 20-40 % more
    (paper: 25 % in Catapult)."""
    gd = crossbar_dst_loop_design(32, 32)
    gs = crossbar_src_loop_design(32, 32)
    rd = estimate_area(schedule(gd, clock_period_ps=909))
    rs = estimate_area(schedule(gs, clock_period_ps=909))
    penalty = rs.total / rd.total - 1
    assert 0.15 <= penalty <= 0.45
    # And the dst-loop fits a single cycle while src-loop must pipeline.
    assert rd.latency == 1
    assert rs.latency > 1


def test_src_loop_compiles_slower():
    gd = crossbar_dst_loop_design(32, 32)
    gs = crossbar_src_loop_design(32, 32)
    sd = schedule(gd, clock_period_ps=909)
    ss = schedule(gs, clock_period_ps=909)
    assert ss.compile_seconds > sd.compile_seconds
    assert len(gs) > len(gd)  # more ops to schedule after unrolling


def test_penalty_shrinks_with_relaxed_clock():
    """With a relaxed clock the src-loop chain fits one cycle and the
    penalty drops to just the comparator/priority logic."""
    gd = crossbar_dst_loop_design(32, 32)
    gs = crossbar_src_loop_design(32, 32)
    tight_p = (estimate_area(schedule(gs, clock_period_ps=909)).total /
               estimate_area(schedule(gd, clock_period_ps=909)).total - 1)
    relaxed_p = (estimate_area(schedule(gs, clock_period_ps=2500)).total /
                 estimate_area(schedule(gd, clock_period_ps=2500)).total - 1)
    assert relaxed_p < tight_p


# ----------------------------------------------------------------------
# HLS vs hand RTL (the ±10 % claim)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("design", [
    vector_mac_design(8, 16),
    fir_design(12, 16),
    adder_tree_design(16, 32),
    alu_design(32),
])
def test_hls_qor_within_10_percent_of_hand_rtl(design):
    hls = estimate_area(schedule(design, clock_period_ps=909))
    hand = hand_rtl_area(design)
    assert abs(hls.total / hand - 1) <= 0.10


def test_bad_constraints_blow_the_qor_budget():
    """Over-constrained resources push HLS beyond the ±10 % envelope —
    the flip side the paper attributes to 'appropriate code
    optimizations and design constraints'."""
    design = vector_mac_design(16, 16)
    hand = hand_rtl_area(design)
    bad = estimate_area(
        schedule(design, clock_period_ps=909, resource_limits={"mul": 1}),
        pipelined=True,
    )
    assert bad.total / hand - 1 < -0.10 or bad.total / hand - 1 > 0.10
