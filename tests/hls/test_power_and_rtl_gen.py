"""Tests for the power model and the Verilog emitter."""

import pytest

from repro.hls import (
    adder_tree_design,
    alu_design,
    crossbar_src_loop_design,
    emit_verilog,
    estimate_area,
    estimate_power,
    fir_design,
    schedule,
    vector_mac_design,
)


# ----------------------------------------------------------------------
# power model
# ----------------------------------------------------------------------
def test_power_report_components_positive():
    sched = schedule(fir_design(16, 16), clock_period_ps=909)
    rpt = estimate_power(sched)
    assert rpt.dynamic_mw > 0
    assert rpt.leakage_mw > 0
    assert rpt.total_mw == pytest.approx(
        rpt.dynamic_mw + rpt.clock_mw + rpt.leakage_mw)
    assert "mW" in rpt.to_text()


def test_power_scales_with_design_size():
    small = estimate_power(schedule(vector_mac_design(4, 16),
                                    clock_period_ps=909))
    large = estimate_power(schedule(vector_mac_design(16, 16),
                                    clock_period_ps=909))
    assert large.total_mw > 2 * small.total_mw


def test_power_scales_with_activity():
    sched = schedule(vector_mac_design(8, 16), clock_period_ps=909)
    idle = estimate_power(sched, activity=0.05)
    busy = estimate_power(sched, activity=0.5)
    assert busy.dynamic_mw > 5 * idle.dynamic_mw
    assert busy.leakage_mw == idle.leakage_mw  # leakage is activity-free


def test_power_activity_validation():
    sched = schedule(alu_design(8), clock_period_ps=909)
    with pytest.raises(ValueError):
        estimate_power(sched, activity=1.5)


def test_pipelined_design_pays_clock_power():
    sched = schedule(fir_design(24, 16), clock_period_ps=500)
    assert sched.latency > 1
    rpt = estimate_power(sched)
    assert rpt.clock_mw > 0


# ----------------------------------------------------------------------
# Verilog emission
# ----------------------------------------------------------------------
def test_emit_single_cycle_module():
    sched = schedule(alu_design(32), clock_period_ps=2000)
    text = emit_verilog(sched)
    assert "module alu_32 (" in text
    assert "endmodule" in text
    assert "input  wire [31:0] a" in text
    assert "output wire [31:0] out" in text
    # Single-cycle: purely combinational, no clock port or registers.
    assert "clk" not in text
    assert "always" not in text
    assert text.count("?") >= 4  # the result mux tree


def test_emit_pipelined_module_has_registers():
    design = adder_tree_design(64, 32)
    sched = schedule(design, clock_period_ps=500)
    assert sched.latency > 1
    text = emit_verilog(sched)
    assert "input  wire clk" in text
    assert "always @(posedge clk)" in text
    assert "_q1" in text  # at least one pipeline register stage


def test_emit_crossbar_has_priority_muxes():
    sched = schedule(crossbar_src_loop_design(4, 8), clock_period_ps=2000)
    text = emit_verilog(sched)
    assert text.count("==") == 16  # 4 outputs x 4 comparators
    assert "o0_m3" in text


def test_emitted_wire_count_matches_graph():
    design = vector_mac_design(4, 16)
    sched = schedule(design, clock_period_ps=2000)
    text = emit_verilog(sched)
    real_ops = [op for op in design.ops.values()
                if op.kind not in ("input", "const", "output")]
    assert text.count("wire [15:0]") >= len(real_ops)


def test_emit_is_deterministic():
    sched = schedule(fir_design(8, 16), clock_period_ps=909)
    assert emit_verilog(sched) == emit_verilog(sched)
