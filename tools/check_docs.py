#!/usr/bin/env python3
"""Check that the documentation stays truthful.

Three checks over the repo's markdown docs and example scripts:

1. **Runnable snippets** — every fenced ``python`` code block in
   ``docs/*.md`` is executed (with ``src/`` on ``sys.path``) and must
   run to completion.  A doc snippet that raises is a doc bug.
2. **Link/heading lint** — every relative markdown link in the checked
   files (including ``README.md``) must point at a file that exists;
   intra-document ``#fragment`` links must match a heading.
3. **Executable examples** — scripts in ``EXEC_EXAMPLES`` are run as
   ``__main__`` (fast ones only; the slow demos stay out of the loop).

Usage::

    python tools/check_docs.py            # check docs/*.md + README.md
    python tools/check_docs.py FILE...    # check specific files

README.md python blocks are NOT executed (the quickstart builds the
full SoC, which is deliberately slow); they are link-linted only.
Exit status is non-zero on any failure.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
EXEC_DIRS = {REPO / "docs"}  # only execute snippets from these dirs
#: Example scripts fast enough (~1 s) to execute on every docs check.
EXEC_EXAMPLES = (REPO / "examples" / "sweep_demo.py",
                 REPO / "examples" / "fault_campaign_demo.py")

FENCE_RE = re.compile(r"^```(\w*)\s*$")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def python_blocks(text: str):
    """Yield (start_line, source) for each fenced ``python`` block."""
    lines = text.splitlines()
    block, lang, start = None, None, 0
    for i, line in enumerate(lines, 1):
        m = FENCE_RE.match(line)
        if m and block is None:
            block, lang, start = [], m.group(1), i + 1
        elif line.strip() == "```" and block is not None:
            if lang == "python":
                yield start, "\n".join(block)
            block, lang = None, None
        elif block is not None:
            block.append(line)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def check_links(path: Path, text: str) -> list:
    headings = {slugify(m.group(1))
                for m in map(HEADING_RE.match, text.splitlines()) if m}
    errors = []
    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                errors.append(f"{path.name}: broken link -> {target}")
                continue
        if fragment:
            frag_headings = headings
            if base:
                frag_text = (path.parent / base).resolve().read_text()
                frag_headings = {
                    slugify(h.group(1))
                    for h in map(HEADING_RE.match, frag_text.splitlines())
                    if h}
            if fragment not in frag_headings:
                errors.append(f"{path.name}: dangling anchor -> {target}")
    return errors


def run_block(path: Path, line: int, source: str) -> str | None:
    scope = {"__name__": f"docsnippet:{path.name}:{line}"}
    try:
        exec(compile(source, f"{path.name}:{line}", "exec"), scope)
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        return f"{path.name}:{line}: snippet raised {type(exc).__name__}: {exc}"
    return None


def run_example(path: Path) -> str | None:
    """Execute an example script as ``__main__``; None on success."""
    import runpy

    try:
        runpy.run_path(str(path), run_name="__main__")
    except SystemExit as exc:  # scripts may sys.exit(0)
        if exc.code not in (None, 0):
            return f"{path.name}: exited with status {exc.code}"
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        return f"{path.name}: raised {type(exc).__name__}: {exc}"
    return None


def main(argv: list) -> int:
    sys.path.insert(0, str(REPO / "src"))
    if argv:
        files = [Path(a).resolve() for a in argv]
    else:
        files = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]

    errors, ran = [], 0
    for path in files:
        if path.suffix != ".md":
            continue  # .py arguments are handled as examples below
        text = path.read_text()
        errors.extend(check_links(path, text))
        if path.parent in EXEC_DIRS:
            for line, source in python_blocks(text):
                err = run_block(path, line, source)
                ran += 1
                status = "FAIL" if err else "ok"
                print(f"  [{status}] {path.name}:{line}")
                if err:
                    errors.append(err)

    examples = EXEC_EXAMPLES if not argv else tuple(
        f for f in files if f in EXEC_EXAMPLES)
    for path in examples:
        err = run_example(path)
        ran += 1
        print(f"  [{'FAIL' if err else 'ok'}] {path.name}")
        if err:
            errors.append(err)

    print(f"checked {len(files)} files, executed {ran} python snippets")
    if errors:
        print("\n".join(f"ERROR: {e}" for e in errors), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
