#!/usr/bin/env python3
"""Benchmark-regression harness for the simulation kernel.

Runs the ``benchmarks/`` suite (pytest-benchmark), captures per-bench
wall times plus deterministic kernel telemetry counters, and emits a
compact ``BENCH_kernel.json``.  A second invocation compares two such
files and fails on regression:

* **wall time** — fail when a bench slows down by more than the
  threshold (default 10 %).  Times are normalized by a fixed pure-Python
  calibration loop measured at run time, so baselines recorded on one
  machine remain meaningful on another.  Benches whose baseline time is
  below a small floor (:data:`MIN_GATED_SECONDS`) are reported but never
  gated — sub-millisecond timings are dominated by scheduler noise.
* **kernel counters** — fail on *any* difference.  The counters
  (events fired, timesteps, delta cycles, thread wakeups, signal
  commits) and the probes' simulated finish times are deterministic, so
  they double as a cycle-exactness oracle for scheduler changes.

Usage::

    python tools/bench_compare.py run  [-o BENCH_kernel.json] [--subset quick|full]
    python tools/bench_compare.py compare BASELINE CURRENT [--threshold 0.10]
    python tools/bench_compare.py check --baseline BASELINE [--subset quick]
                                  [-o BENCH_kernel.json] [--threshold 0.10]

``check`` = ``run`` + ``compare`` in one go (the CI entry point).
The quick local loop is ``python -m repro bench``, which wraps this
script.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCHEMA = "bench_kernel/1"

#: Baseline wall time below which a bench is too fast to gate on.
#: Sub-20ms runs are dominated by process-level noise — allocator and
#: address-space layout luck makes the *same* build time bimodally
#: (observed up to 1.8x between back-to-back runs, stable within each
#: process), so gating them would only produce flakes.  They are still
#: measured and summarized.
MIN_GATED_SECONDS = 0.02

#: Bench subsets: ``quick`` is the CI/regression loop, ``full`` the
#: complete suite used for the checked-in speedup artifact.
SUBSETS = {
    "quick": [
        "benchmarks/test_bench_channels.py",
        "benchmarks/test_bench_gals_overhead.py",
    ],
    "full": ["benchmarks"],
}


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def calibrate() -> float:
    """Seconds for a fixed pure-Python spin — a machine-speed yardstick."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        x = 0
        for i in range(2_000_000):
            x += i
        best = min(best, time.perf_counter() - t0)
    return best


def select_files(subset: str, only: str | None) -> list[str]:
    """The benchmark files to run: a subset, optionally name-filtered.

    With ``only`` the whole ``benchmarks/`` directory is searched (not
    just the subset) so e.g. ``--only sweep`` can run a bench that is
    not part of the quick CI loop without re-running the full suite.
    """
    if not only:
        return SUBSETS[subset]
    matches = sorted(p for p in (ROOT / "benchmarks").glob("test_bench_*.py")
                     if only in p.stem)
    if not matches:
        raise SystemExit(f"--only {only!r} matches no benchmarks/test_bench_*"
                         ".py file")
    return [str(p.relative_to(ROOT)) for p in matches]


def run_benches(subset: str, only: str | None = None) -> dict:
    """Run the pytest-benchmark suite; return {bench name: stats}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    cmd = [
        sys.executable, "-m", "pytest", *select_files(subset, only), "-q",
        # The speedup-table test renders the checked-in snapshot pair; it
        # is not a timing bench and would self-compare during a snapshot
        # regeneration, so keep it out of the sweep.
        "--ignore", str(ROOT / "benchmarks" / "test_bench_kernel_speedup.py"),
        # Most benches run a single round (rounds=1 pedantic); without
        # this, a cyclic-garbage collection triggered by a *previous*
        # test lands inside someone's only measured round and reads as a
        # 2-3x regression.
        "--benchmark-disable-gc",
        "--benchmark-json", tmp_path,
    ]
    env_path = str(ROOT / "src")
    import os
    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(cmd, cwd=ROOT, env=env)
    if proc.returncode != 0:
        raise SystemExit(f"benchmark suite failed (exit {proc.returncode})")
    with open(tmp_path) as fh:
        raw = json.load(fh)
    pathlib.Path(tmp_path).unlink(missing_ok=True)
    benches = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        benches[bench["fullname"]] = {
            "mean": stats["mean"],
            "min": stats["min"],
            "rounds": stats["rounds"],
        }
    return benches


def _kernel_counters(session) -> dict:
    counters = dict(session.report(label="probe").kernel)
    counters.pop("proc_seconds", None)  # wall time, not deterministic
    return counters


def probe_channels() -> dict:
    from repro import observe
    from repro.connections import Buffer, In, Out
    from repro.kernel import Simulator

    with observe.capture() as session:
        sim = Simulator()
        clk = sim.add_clock("clk", period=10)
        chan = Buffer(sim, clk, capacity=4)
        out, inp = Out(chan), In(chan)
        got = []

        def producer():
            for k in range(200):
                yield from out.push(k)

        def consumer():
            for _ in range(200):
                got.append((yield from inp.pop()))
                yield 2

        sim.add_thread(producer(), clk, name="p")
        sim.add_thread(consumer(), clk, name="c")
        end = sim.run(until=100_000)
    assert got == list(range(200))
    return {"finish_time": end, **_kernel_counters(session)}


def probe_mesh() -> dict:
    from repro import observe
    from repro.kernel import Simulator
    from repro.noc import Mesh

    with observe.capture() as session:
        sim = Simulator()
        clk = sim.add_clock("clk", period=10)
        mesh = Mesh(sim, clk, width=3, height=3, router="whvc")
        for src in range(9):
            mesh.ni(src).send((src + 4) % 9, [f"m{src}f{j}" for j in range(5)])
        while (sum(ni.messages_received for ni in mesh.nis) < 9
               and sim.now < 2_000_000):
            sim.run(max_steps=100)
        assert sum(ni.messages_received for ni in mesh.nis) == 9
        drain = max(ni.last_arrival_time or 0 for ni in mesh.nis)
    return {
        "finish_time": drain,
        "flits_forwarded": sum(r.flits_forwarded for r in mesh.routers),
        **_kernel_counters(session),
    }


def probe_soc() -> dict:
    from repro import observe
    from repro.workloads import run_workload, vector_scale_workload

    with observe.capture() as session:
        soc = run_workload(vector_scale_workload(n_pes=2, n_per_pe=32))
    return {"finish_time": soc.finish_time, **_kernel_counters(session)}


PROBES = {
    "channels": probe_channels,
    "mesh": probe_mesh,
    "soc": probe_soc,
}


def run_all(subset: str, only: str | None = None) -> dict:
    sys.path.insert(0, str(ROOT / "src"))
    # Sample the yardstick before and after the sweep and keep the best:
    # a transient load spike at a single sample would overstate machine
    # slowness and skew every normalized comparison.
    cal = calibrate()
    benches = run_benches(subset, only)
    cal = min(cal, calibrate())
    result = {
        "schema": SCHEMA,
        "created": datetime.date.today().isoformat(),
        "subset": subset,
        "calibration_seconds": cal,
        "benches": benches,
        "kstats": {name: fn() for name, fn in PROBES.items()},
    }
    if only:
        result["only"] = only
    return result


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def compare(base: dict, cur: dict, threshold: float) -> list[str]:
    """Return a list of regression messages (empty = pass)."""
    problems = []
    base_cal = base.get("calibration_seconds")
    cur_cal = cur.get("calibration_seconds")
    normalize = bool(base_cal and cur_cal)
    shared = sorted(set(base.get("benches", {})) & set(cur.get("benches", {})))
    for name in shared:
        b = base["benches"][name]["min"]
        c = cur["benches"][name]["min"]
        if b < MIN_GATED_SECONDS:
            continue  # too fast to time reliably; summary still shows it
        if normalize:
            ratio = (c / cur_cal) / (b / base_cal)
        else:
            ratio = c / b
        if ratio > 1.0 + threshold:
            problems.append(
                f"WALL  {name}: {ratio:.2f}x slower "
                f"(baseline {b:.4f}s, current {c:.4f}s, "
                f"threshold {1 + threshold:.2f}x)")
    for probe in sorted(set(base.get("kstats", {})) & set(cur.get("kstats", {}))):
        bk, ck = base["kstats"][probe], cur["kstats"][probe]
        for key in sorted(set(bk) & set(ck)):
            if bk[key] != ck[key]:
                problems.append(
                    f"KSTAT {probe}.{key}: baseline {bk[key]} != "
                    f"current {ck[key]} (must be identical)")
    return problems


def summarize(base: dict, cur: dict) -> str:
    lines = []
    base_cal = base.get("calibration_seconds")
    cur_cal = cur.get("calibration_seconds")
    normalize = bool(base_cal and cur_cal)
    for name in sorted(set(base.get("benches", {})) & set(cur.get("benches", {}))):
        b = base["benches"][name]["min"]
        c = cur["benches"][name]["min"]
        ratio = (c / cur_cal) / (b / base_cal) if normalize else c / b
        speedup = 1.0 / ratio
        lines.append(f"  {name}: {b:.4f}s -> {c:.4f}s  ({speedup:.2f}x)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run benches, write a JSON snapshot")
    p_run.add_argument("-o", "--output", default="BENCH_kernel.json")
    p_run.add_argument("--subset", choices=sorted(SUBSETS), default="full")
    p_run.add_argument("--only", default=None, metavar="NAME",
                       help="only run benchmark files whose name contains "
                            "NAME (searched over all of benchmarks/)")
    p_run.add_argument(
        "--merge", action="store_true",
        help="merge with an existing output file, keeping per-bench "
             "minima (a multi-process min is a better wall-time "
             "estimator than any single run; kstats must be identical)")

    p_cmp = sub.add_parser("compare", help="compare two snapshots")
    p_cmp.add_argument("baseline")
    p_cmp.add_argument("current")
    p_cmp.add_argument("--threshold", type=float, default=0.10)

    p_chk = sub.add_parser("check", help="run + compare against a baseline")
    p_chk.add_argument("--baseline", required=True)
    p_chk.add_argument("-o", "--output", default="BENCH_kernel.json")
    p_chk.add_argument("--subset", choices=sorted(SUBSETS), default="quick")
    p_chk.add_argument("--only", default=None, metavar="NAME",
                       help="only run benchmark files whose name contains "
                            "NAME (searched over all of benchmarks/)")
    p_chk.add_argument("--threshold", type=float, default=0.10)

    args = parser.parse_args(argv)

    if args.command == "run":
        result = run_all(args.subset, args.only)
        out_path = pathlib.Path(args.output)
        if args.merge and out_path.exists():
            prev = json.loads(out_path.read_text())
            mismatches = compare({"kstats": prev.get("kstats", {})},
                                 {"kstats": result["kstats"]}, 0.0)
            if mismatches:
                for m in mismatches:
                    print(m)
                raise SystemExit("--merge refused: kernel counters differ "
                                 "from the existing snapshot")
            for name, stats in prev.get("benches", {}).items():
                cur = result["benches"].get(name)
                if cur is None or stats["min"] < cur["min"]:
                    result["benches"][name] = stats
            result["calibration_seconds"] = min(
                result["calibration_seconds"],
                prev.get("calibration_seconds") or float("inf"))
        out_path.write_text(json.dumps(result, indent=1,
                                       sort_keys=True) + "\n")
        print(f"wrote {args.output}: {len(result['benches'])} benches, "
              f"{len(result['kstats'])} kstat probes")
        return 0

    if args.command == "compare":
        base = json.loads(pathlib.Path(args.baseline).read_text())
        cur = json.loads(pathlib.Path(args.current).read_text())
        print(summarize(base, cur))
        problems = compare(base, cur, args.threshold)
        for p in problems:
            print(p)
        print("PASS" if not problems else f"FAIL: {len(problems)} regressions")
        return 1 if problems else 0

    # check
    result = run_all(args.subset, args.only)
    base = json.loads(pathlib.Path(args.baseline).read_text())
    problems = compare(base, result, args.threshold)
    if any(p.startswith("WALL") for p in problems):
        # One retry before declaring a wall-time regression: keep the
        # per-bench best of both runs.  A real regression reproduces in
        # both processes; layout-luck noise usually does not.
        print("wall-time regression on first run; retrying once...")
        retry = run_all(args.subset, args.only)
        for name, stats in retry["benches"].items():
            cur = result["benches"].get(name)
            if cur is None or stats["min"] < cur["min"]:
                result["benches"][name] = stats
        result["calibration_seconds"] = min(result["calibration_seconds"],
                                            retry["calibration_seconds"])
        problems = compare(base, result, args.threshold)
    pathlib.Path(args.output).write_text(json.dumps(result, indent=1,
                                                    sort_keys=True) + "\n")
    print(summarize(base, result))
    for p in problems:
        print(p)
    print("PASS" if not problems else f"FAIL: {len(problems)} regressions")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
