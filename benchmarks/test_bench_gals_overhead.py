"""Section 3.1: GALS area overhead (< 3 % for typical partition sizes)
and the pausible-FIFO latency advantage over brute-force synchronizers.
"""

from repro.connections import Buffer, In, Out
from repro.experiments import (
    format_overhead_table,
    partition_size_sweep,
)
from repro.experiments import testchip_overhead as overhead_report
from repro.gals import BruteForceSyncFIFO, PausibleBisyncFIFO
from repro.kernel import Simulator


def test_bench_gals_area_overhead(benchmark, save_result):
    def run():
        return partition_size_sweep(), overhead_report()

    points, report = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("gals_overhead", format_overhead_table(points, report))
    # The paper's claim, at the testchip's partition inventory.
    assert report.chip_overhead_fraction < 0.03
    # Typical (~1M-gate) partitions are individually under 3 %.
    typical = [p for p in points if p.logic_gates >= 1e6]
    assert all(p.fraction < 0.03 for p in typical)
    # The crossover exists: tiny partitions pay more than 3 %.
    assert points[0].fraction > 0.03
    # And the synchronous alternative pays margin GALS does not.
    assert report.sync_frequency_penalty > 0.03


def _mean_crossing_latency(fifo_cls, *, tx_period=90, rx_period=130, n=80):
    sim = Simulator()
    tx = sim.add_clock("tx", period=tx_period)
    rx = sim.add_clock("rx", period=rx_period)
    fifo = fifo_cls(sim, tx, rx)
    in_ch = Buffer(sim, tx, capacity=2, name="i")
    out_ch = Buffer(sim, rx, capacity=2, name="o")
    fifo.in_port.bind(in_ch)
    fifo.out_port.bind(out_ch)
    src, dst = Out(in_ch), In(out_ch)
    latencies = []

    def producer():
        for i in range(n):
            yield from src.push((i, sim.now))
            yield 8  # sparse traffic isolates latency from throughput

    def consumer():
        for _ in range(n):
            _, sent = yield from dst.pop()
            latencies.append(sim.now - sent)

    sim.add_thread(producer(), tx, name="p")
    sim.add_thread(consumer(), rx, name="c")
    sim.run(until=n * 20_000)
    return sum(latencies) / len(latencies)


def test_bench_pausible_fifo_latency(benchmark, save_result):
    """Figure 4's motivation: low-latency error-free crossings."""
    pausible = benchmark.pedantic(
        lambda: _mean_crossing_latency(PausibleBisyncFIFO),
        rounds=1, iterations=1)
    brute = _mean_crossing_latency(BruteForceSyncFIFO)
    save_result(
        "pausible_fifo_latency",
        "Mean CDC latency, sparse traffic (ticks)\n"
        f"  pausible bisync FIFO : {pausible:8.1f}\n"
        f"  2-flop synchronizer  : {brute:8.1f}\n"
        f"  advantage            : {100 * (1 - pausible / brute):6.1f} %",
    )
    assert pausible < brute * 0.8  # at least ~20 % lower latency


def test_bench_adaptive_clocking_margin(benchmark, save_result):
    """Section 3.1: adaptive local clocks avoid static supply-noise
    margin; throughput gain equals the margin avoided."""
    from repro.experiments import (
        adaptive_clocking_experiment,
        format_adaptive_clocking,
    )

    result = benchmark.pedantic(adaptive_clocking_experiment,
                                rounds=1, iterations=1)
    save_result("adaptive_clocking", format_adaptive_clocking(result))
    # Adaptive beats the statically-margined clock...
    assert result.throughput_gain > 0.02
    # ...because its mean stretch is well under the worst-case margin.
    assert result.mean_adaptive_stretch < result.static_margin
