"""Extension bench: PE-array scaling on the prototype SoC.

Not a paper figure, but the question the spatial-array architecture
exists to answer: how does throughput scale with the number of PEs?

The measured answer is a genuine finding about this design point: strong
scaling of kilo-word kernels peaks around 4 PEs and then *inverts*,
because every command is dispatched serially by the single RISC-V
controller (~40 cycles of firmware per command word) while per-PE
compute shrinks as 1/N.  Longer per-PE command chains make it worse,
not better — their dispatch cost also grows with N.  This is the
control-plane Amdahl bottleneck that motivates per-PE programmability
and DMA-style descriptor fetch in production accelerators (the paper's
PEs are programmed with full kernels for exactly this reason).
"""

import pytest

from repro.soc.protocol import Cmd, Kernel
from repro.workloads import run_workload, vector_scale_workload
from repro.workloads.soc_workloads import (
    CONTROLLER,
    GMEM_LEFT,
    SocWorkload,
    _send,
    scale_ref,
)

TOTAL_WORDS = 1024
HEAVY_CHAIN = 24  # compute commands per PE


def _heavy_workload(n_pes: int) -> SocWorkload:
    """LOAD, then a long SCALE chain, then STORE — compute-bound."""
    n_per_pe = TOTAL_WORDS // n_pes
    data = list(range(TOTAL_WORDS))
    out_base = TOTAL_WORDS
    commands = []
    for pe in range(n_pes):
        base = pe * n_per_pe
        commands.append(_send(pe, Cmd.LOAD, GMEM_LEFT, base, 0, n_per_pe))
        for _ in range(HEAVY_CHAIN):
            commands.append(_send(pe, Cmd.COMPUTE, Kernel.SCALE, 0, 0, 0,
                                  n_per_pe, 3))
        commands += [
            _send(pe, Cmd.STORE, GMEM_LEFT, out_base + base, 0, n_per_pe),
            _send(pe, Cmd.NOTIFY, CONTROLLER, pe),
        ]
    commands.append(("wait", n_pes))
    expected = data
    factor = pow(3, HEAVY_CHAIN, 1 << 32)
    expected = scale_ref(data, factor)

    def check(soc) -> bool:
        return soc.gmem_left.dump(out_base, TOTAL_WORDS) == expected

    return SocWorkload(f"heavy_scale_{n_pes}", commands, preload_left=data,
                       check=check)


def _cycles(workload) -> int:
    soc = run_workload(workload)
    return soc.finish_time // soc.CLOCK_PERIOD


def test_bench_pe_scaling(benchmark, save_result):
    counts = (1, 2, 4, 8, 16)
    light = {}
    heavy = {}

    def run():
        for n in counts:
            light[n] = _cycles(vector_scale_workload(
                n_pes=n, n_per_pe=TOTAL_WORDS // n))
            heavy[n] = _cycles(_heavy_workload(n))

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"PE strong scaling, {TOTAL_WORDS} total words",
             f"{'PEs':>4} {'1-op cyc':>10} {'speedup':>8} "
             f"{f'{HEAVY_CHAIN}-op cyc':>10} {'speedup':>8}"]
    for n in counts:
        lines.append(f"{n:>4} {light[n]:>10} {light[1] / light[n]:>8.2f} "
                     f"{heavy[n]:>10} {heavy[1] / heavy[n]:>8.2f}")
    lines.append("scaling peaks near 4 PEs, then serial command dispatch "
                 "from the single controller dominates (control-plane "
                 "Amdahl; per-PE command chains make it worse, not better).")
    save_result("pe_scaling", "\n".join(lines))

    # Parallelism pays off early...
    assert light[4] < light[1]
    assert heavy[2] < heavy[1]
    # ...then serial dispatch inverts the curve at high PE counts.
    assert light[16] > light[4]
    assert heavy[16] > heavy[4]
