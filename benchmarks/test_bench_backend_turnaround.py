"""Section 4 back-end claim: 12-hour RTL-to-layout turnaround with the
partitioned GALS flow, enabling dozens of daily iterations during the
march to tapeout.
"""

from repro.flow import FlowRuntimeModel, inventory_partitions
from repro.flow import testchip_inventory as chip_inventory


def test_bench_backend_turnaround(benchmark, save_result):
    model = FlowRuntimeModel()
    parts = inventory_partitions(chip_inventory())

    def run():
        return (model.turnaround(parts, gals=True, parallel=True),
                model.turnaround(parts, gals=False, parallel=True),
                model.flat_hours(parts))

    gals, sync, flat = benchmark.pedantic(run, rounds=1, iterations=1)
    chip_runs_per_day = gals.unique_partitions * gals.daily_iterations
    save_result(
        "backend_turnaround",
        gals.to_text()
        + f"\nsynchronous hierarchical flow: {sync.total_hours:.1f} h"
        + f"\nflat (non-hierarchical) flow:  {flat:.1f} h"
        + f"\npartition runs per day across the farm: "
          f"{chip_runs_per_day:.0f}",
    )
    # The paper's 12-hour turnaround, within modelling tolerance.
    assert gals.total_hours <= 16.0
    assert gals.daily_iterations >= 1.5
    # GALS beats synchronous hierarchical; both crush the flat flow.
    assert gals.total_hours < sync.total_hours
    assert flat > 3 * sync.total_hours
    assert flat > 10 * gals.total_hours
