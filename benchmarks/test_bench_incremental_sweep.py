"""Incremental re-simulation speedup on a dense LI-latency grid.

The paper's productivity story rests on fast architectural iteration;
``run_sweep(..., incremental=True)`` makes the sweep cost scale with
the number of **distinct replay evaluations** (2 captures + one event
schedule per unique FIFO/stall signature), not the number of points.
The grid sweeps FIFO capacity, injected stall schedules, and 20 clock
periods — the replay-safe axes — so the full-simulation side runs 480
kernel simulations while the incremental side runs 2 captures, ~48
analytical replays, and serves every period-only satellite from the
``Replayer`` memo (re-evaluating a design at a new clock cannot change
cycle counts, so it costs a dictionary lookup).

Two claims:

* the incremental sweep is at least 10x faster than simulating every
  point, even with the baseline given 4 worker processes (requires
  >= 4 usable CPUs so the baseline runs at full parallel strength),
* its merged result is **bit-identical** to the full simulation's
  under the canonical serialization.
"""

import os
import time

import pytest

from repro.experiments.li_latency import sweep_space
from repro.sweep import run_sweep


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _space():
    """2 stages x 4 caps x 3 stall points x 20 periods = 480 points."""
    points = []
    for period in range(5, 25):
        points += sweep_space(probabilities=(0.0, 0.2, 0.4), trials=1,
                              period=period)
    return points


@pytest.mark.skipif(_usable_cpus() < 4,
                    reason="needs >= 4 CPUs for a full-strength baseline")
def test_bench_incremental_sweep_speedup(benchmark, save_result):
    points = _space()
    assert len(points) >= 200

    t0 = time.perf_counter()
    full = run_sweep(points, jobs=4, telemetry=False)
    full_wall = time.perf_counter() - t0
    assert full.errors == 0

    t0 = time.perf_counter()
    incremental = benchmark.pedantic(
        lambda: run_sweep(points, jobs=4, incremental=True),
        rounds=1, iterations=1)
    inc_wall = time.perf_counter() - t0
    assert incremental.errors == 0
    assert incremental.canonical() == full.canonical()
    assert incremental.derived == len(points)
    assert incremental.captures == 2  # one per structural stage count

    speedup = full_wall / inc_wall
    assert speedup >= 10.0, (
        f"incremental speedup {speedup:.1f}x < 10x "
        f"(full {full_wall:.2f}s, incremental {inc_wall:.2f}s)")
    save_result(
        "incremental_sweep",
        "\n".join([
            f"points: {len(points)} (2 structural bases)",
            f"full simulation (jobs=4): {full_wall:.2f}s "
            f"| {full.summary()}",
            f"incremental (jobs=4): {inc_wall:.2f}s "
            f"| {incremental.summary()}",
            f"speedup: {speedup:.1f}x",
        ]))
