"""Before/after table for the scheduler hot-path overhaul.

Renders ``benchmarks/results/kernel_speedup.txt`` from the committed
``BENCH_kernel_baseline.json`` / ``BENCH_kernel.json`` pair (see
``docs/PERFORMANCE.md``), so the speedup is a reproducible artifact.
Speedups are calibration-normalized, making the assertion meaningful
even if one snapshot is ever regenerated on a different machine.
"""


def _norm(snapshot: dict, name: str) -> float:
    return (snapshot["benches"][name]["min"]
            / snapshot["calibration_seconds"])


def test_kernel_speedup_table(bench_snapshots, save_result):
    base, cur = bench_snapshots
    shared = sorted(set(base["benches"]) & set(cur["benches"]))
    assert shared, "snapshots share no benches"
    lines = [
        "Scheduler hot-path overhaul: wall-clock speedup per bench",
        "(min over rounds, calibration-normalized; raw seconds in",
        " parentheses; from BENCH_kernel_baseline.json vs BENCH_kernel.json)",
        "",
    ]
    total_base = total_cur = 0.0
    for name in shared:
        b, c = _norm(base, name), _norm(cur, name)
        total_base += b
        total_cur += c
        raw_b = base["benches"][name]["min"]
        raw_c = cur["benches"][name]["min"]
        lines.append(f"  {b / c:5.2f}x  {name}"
                     f"  ({raw_b:.3f}s -> {raw_c:.3f}s)")
    suite = total_base / total_cur
    lines += ["", f"  {suite:5.2f}x  full suite (sum of bench minima)"]
    save_result("kernel_speedup", "\n".join(lines))

    pe = [n for n in shared if "pe_scaling" in n]
    assert pe, "pe_scaling bench missing from snapshots"
    assert _norm(base, pe[0]) / _norm(cur, pe[0]) >= 2.0
    assert suite >= 1.5

    # Telemetry-disabled overhead on the channel micro-benches stays
    # within noise (the channels benches run with the hub off).
    chan = [n for n in shared if "test_bench_fast_channel" in n]
    assert chan, "channel benches missing from snapshots"
