"""Section 4 verification claim: stall injection quickly covers timing
corner cases a directed test would need dedicated effort to reach.

A seeded backpressure bug is invisible at stall probability 0 and is
found within a handful of randomized trials once stalls are injected.
"""

from repro.experiments import format_campaign, stall_campaign


def test_bench_stall_injection_campaign(benchmark, save_result):
    probabilities = (0.0, 0.1, 0.3, 0.5)

    def run():
        return [stall_campaign(p, trials=10) for p in probabilities]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("stall_verification", format_campaign(results))
    by_p = {r.stall_probability: r for r in results}
    assert by_p[0.0].detections == 0           # bug invisible w/o stalls
    assert by_p[0.3].detection_rate >= 0.8     # found almost every trial
    assert by_p[0.5].first_detection_trial <= 3


def test_bench_clean_design_no_false_positives(benchmark):
    result = benchmark.pedantic(
        lambda: stall_campaign(0.5, trials=10, bug=False),
        rounds=1, iterations=1)
    assert result.detections == 0
