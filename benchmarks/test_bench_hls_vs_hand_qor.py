"""Section 2.2 QoR claim: HLS within ±10 % of hand-optimized RTL
across a range of datapath modules — under appropriate constraints.
"""

from repro.experiments import (
    bad_constraint_ablation,
    format_qor_results,
    hls_vs_hand_qor,
)


def test_bench_hls_vs_hand(benchmark, save_result):
    results = benchmark.pedantic(hls_vs_hand_qor, rounds=1, iterations=1)
    save_result("hls_vs_hand_qor",
                format_qor_results(results, title="HLS vs hand RTL (±10 %)"))
    assert all(abs(r.delta) <= 0.10 for r in results)


def test_bench_bad_constraints_ablation(benchmark, save_result):
    """The claim's contrapositive: without appropriate constraints the
    envelope is blown (over-shared resources, II=1 register pressure)."""
    results = benchmark.pedantic(bad_constraint_ablation, rounds=1,
                                 iterations=1)
    save_result("hls_vs_hand_qor_bad_constraints",
                format_qor_results(results,
                                   title="HLS vs hand RTL, bad constraints"))
    assert any(abs(r.delta) > 0.10 for r in results)
