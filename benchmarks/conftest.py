"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables/figures and saves
the rendered table under ``benchmarks/results/`` so the numbers quoted
in EXPERIMENTS.md can be re-derived from a run.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def bench_snapshots():
    """The committed (baseline, current) ``BENCH_kernel`` snapshot pair.

    Produced by ``tools/bench_compare.py run`` before and after the
    scheduler overhaul; skips when the pair is not checked in.
    """
    base = RESULTS_DIR / "BENCH_kernel_baseline.json"
    cur = RESULTS_DIR / "BENCH_kernel.json"
    if not (base.exists() and cur.exists()):
        pytest.skip("BENCH_kernel snapshot pair not present")
    return json.loads(base.read_text()), json.loads(cur.read_text())


@pytest.fixture
def save_result():
    """Callable fixture: save_result(name, text) -> path."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
