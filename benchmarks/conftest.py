"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables/figures and saves
the rendered table under ``benchmarks/results/`` so the numbers quoted
in EXPERIMENTS.md can be re-derived from a run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Callable fixture: save_result(name, text) -> path."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
