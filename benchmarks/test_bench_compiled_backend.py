"""Regression gate for the compiled backend's speedup claim.

``docs/PERFORMANCE.md`` records the graph-compiled dispatch loop
(:mod:`repro.compile`) running the heavy 16-PE ``pe_scaling`` workload
well over 5x faster than the threaded reference kernel.  This bench
re-measures that ratio and gates on it, so a change that quietly
erodes the compiled engine's advantage (or breaks its attach path)
fails CI rather than surviving as a stale number in the docs.

The gate uses the heavy 16-PE point rather than the whole size sweep:
it is the largest, least noisy measurement (~1s threaded), and the
small/mid sizes are dominated by fixed costs that make their ratios
swing by tens of percent between runs.  Cycle counts from the two
backends are also compared — the speedup claim is only meaningful if
the compiled run still simulates the identical machine.
"""

import os
import time

import pytest

from repro.kernel.backend import last_run, use_backend
from repro.workloads import run_workload

from test_bench_pe_scaling import TOTAL_WORDS, _heavy_workload

#: Checked-in claim (docs/PERFORMANCE.md): >=5x on the heavy 16-PE
#: workload.  Gated with margin below the measured ~6.2x so allocator
#: and CPU-frequency luck do not flake the job.
MIN_SPEEDUP = 5.0
ROUNDS = 3


def _cycles_and_seconds(workload, backend: str):
    best = float("inf")
    cycles = None
    for _ in range(ROUNDS):
        with use_backend(backend):
            t0 = time.perf_counter()
            soc = run_workload(workload)
            elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        cycles = soc.finish_time // soc.CLOCK_PERIOD
    return cycles, best


def test_bench_compiled_speedup(benchmark, save_result):
    counts = (1, 2, 4, 8, 16)
    rows = {}

    def run():
        for n in counts:
            workload = _heavy_workload(n)
            threaded_cyc, threaded_s = _cycles_and_seconds(workload,
                                                           "threaded")
            compiled_cyc, compiled_s = _cycles_and_seconds(workload,
                                                           "compiled")
            assert last_run() == ("compiled", None)
            assert compiled_cyc == threaded_cyc
            rows[n] = (threaded_cyc, threaded_s, compiled_s)

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"Compiled vs threaded backend, heavy pe_scaling workload "
             f"({TOTAL_WORDS} total words, min of {ROUNDS} rounds)",
             f"{'PEs':>4} {'cycles':>8} {'threaded s':>11} "
             f"{'compiled s':>11} {'speedup':>8}"]
    for n in counts:
        cyc, t_s, c_s = rows[n]
        lines.append(f"{n:>4} {cyc:>8} {t_s:>11.3f} {c_s:>11.3f} "
                     f"{t_s / c_s:>8.2f}")
    total_t = sum(r[1] for r in rows.values())
    total_c = sum(r[2] for r in rows.values())
    lines.append(f"{'all':>4} {'':>8} {total_t:>11.3f} {total_c:>11.3f} "
                 f"{total_t / total_c:>8.2f}")
    lines.append("cycle counts are asserted identical per size; the gate "
                 f"is {MIN_SPEEDUP:.0f}x on the 16-PE point (the stable "
                 "measurement; small sizes are fixed-cost dominated).")
    save_result("compiled_speedup", "\n".join(lines))

    _, heavy_t, heavy_c = rows[16]
    # The table is always measured and recorded (cycle identity above
    # holds on any machine); the wall-clock gate itself needs a box
    # with some headroom or contention noise flakes it.
    if (os.cpu_count() or 1) < 4:
        pytest.skip("speedup gate needs >=4 CPUs; table recorded, "
                    f"measured {heavy_t / heavy_c:.2f}x ungated")
    assert heavy_t / heavy_c >= MIN_SPEEDUP
