"""Dispatch overhead of the job execution core (:mod:`repro.jobs`).

Every entry point — the CLI verbs, ``repro run``, the sweep engine's
workers — routes experiment execution through
``jobs.execute(JobRequest(...))``.  That indirection (registry lookup,
backend context, provenance bookkeeping, formatter call) must stay
negligible against the cheapest real experiment, or the unification
taxes every sweep point.  Benchmarked on the analytic ``backend``
experiment (runner ~1-2 ms), the cheapest job the CLI can submit.
"""

import time

from repro import registry
from repro.jobs import JobRequest, execute


def test_bench_job_dispatch_overhead(benchmark, save_result):
    registry.load()
    spec = registry.get("backend")
    request = JobRequest(experiment="backend")

    # Steady-state cost of the raw runner (no job core).
    t0 = time.perf_counter()
    for _ in range(50):
        spec.runner({}, None)
    direct = (time.perf_counter() - t0) / 50

    result = benchmark.pedantic(lambda: execute(request),
                                rounds=5, iterations=10)

    t0 = time.perf_counter()
    for _ in range(50):
        execute(request)
    routed = (time.perf_counter() - t0) / 50
    overhead = routed - direct

    save_result(
        "job_core_overhead",
        "job core dispatch overhead (analytic 'backend' experiment)\n"
        f"direct runner call : {1e6 * direct:10.1f} us\n"
        f"jobs.execute       : {1e6 * routed:10.1f} us\n"
        f"dispatch overhead  : {1e6 * overhead:10.1f} us/job")

    assert result.payload == spec.runner({}, None)
    assert result.text == spec.formatter(result.payload)
    # The core's own bookkeeping stays under a millisecond per job —
    # noise against any experiment that actually simulates something.
    assert overhead < 1e-3, f"job dispatch overhead {overhead:.6f}s"
