"""Section 4 productivity claim: 2K-20K NAND2-equivalent gates per
engineer-day on unique unit-level designs with OOHLS, significantly
higher than an RTL baseline.
"""

from repro.flow import (
    OOHLS_METHODOLOGY,
    RTL_METHODOLOGY,
    inventory_efforts,
    productivity_report,
)
from repro.flow import testchip_inventory as chip_inventory


def test_bench_productivity(benchmark, save_result):
    efforts = inventory_efforts(chip_inventory())

    def run():
        return (productivity_report(efforts, OOHLS_METHODOLOGY),
                productivity_report(efforts, RTL_METHODOLOGY))

    oohls, rtl = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("productivity",
                oohls.to_text() + "\n\n" + rtl.to_text())
    # Every unique OOHLS unit lands inside the paper's 2K-20K band.
    for name, gates_per_day in oohls.per_unit:
        assert 2_000 <= gates_per_day <= 20_000, name
    assert 2_000 <= oohls.overall_productivity <= 20_000
    # "Significantly higher than a baseline RTL-based methodology."
    assert oohls.overall_productivity > 5 * rtl.overall_productivity
