"""Warm batched sweep speedup on construction-dominated points.

The warm engine exists for exactly one regime: large structurally
shared grids of *small* points, where per-point design construction
and compiled-backend lowering dominate the simulated work.  The bench
pins that regime with a wide latency-insensitive fabric — 48 parallel
two-hop lanes (96 channels, 144 threads) pushing one message each over
a tight 14-cycle horizon — swept over the replay-safe knobs (FIFO
capacity, a tail-stall schedule on the probe lane, trial), so all 200
points share one structural base.  Fresh execution constructs and
lowers the fabric 200 times; warm execution builds it once and runs
every point via the kernel's snapshot/reset primitive.

Two claims, mirroring ``test_bench_incremental_sweep``:

* the warm sweep is at least 3x faster than fresh per-point execution
  (gated on runners with >= 4 usable CPUs; below that the table is
  still recorded),
* its merged result is **bit-identical** to the fresh sweep's under
  the canonical serialization.
"""

import os
import time

import pytest

from repro.connections import Buffer, In, Out
from repro.experiments.sweeps import SweepSpec, register_sweep
from repro.kernel import Simulator
from repro.sweep import BatchAdapter, SweepPoint, WarmSession, run_sweep
from repro.sweep.warm import reset_sessions

LANES = 48
N_MSGS = 1
#: Structural horizon (posedges): one message clears two hops in ~4
#: cycles; the slack absorbs probe-lane stalls up to p = 0.1 (missing
#: it would take 10 consecutive stall hits, p^10 ~ 1e-10).  Tight by
#: design — the construction share of a fresh point is the whole story.
HORIZON_CYCLES = 14
PERIOD = 10


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _build_fabric(capacity, stall_probability, stall_seed):
    sim = Simulator()
    clk = sim.add_clock("clk", period=PERIOD)
    lanes = []
    received = []
    for lane in range(LANES):
        up = Buffer(sim, clk, capacity=capacity, name=f"up{lane}")
        down = Buffer(sim, clk, capacity=capacity, name=f"down{lane}")
        if lane == 0 and stall_probability > 0.0:
            down.set_stall(stall_probability, seed=stall_seed)
        src, fwd_in = Out(up, name=f"src{lane}"), In(up, name=f"in{lane}")
        fwd_out = Out(down, name=f"out{lane}")
        sink = In(down, name=f"sink{lane}")
        rx = []
        received.append(rx)

        def producer(src=src):
            for msg in range(N_MSGS):
                yield from src.push(msg)

        def forwarder(fwd_in=fwd_in, fwd_out=fwd_out):
            for _ in range(N_MSGS):
                msg = yield from fwd_in.pop()
                yield from fwd_out.push(msg)

        def consumer(sink=sink, rx=rx):
            for _ in range(N_MSGS):
                rx.append(((yield from sink.pop()), sim.now))

        sim.add_thread(producer, clk, name=f"p{lane}")
        sim.add_thread(forwarder, clk, name=f"f{lane}")
        sim.add_thread(consumer, clk, name=f"c{lane}")
        lanes.append((up, down))

    def _clear():
        for rx in received:
            rx.clear()

    sim.on_restore(_clear)
    return sim, received, lanes


def _record(received, lanes):
    return {
        "received": [[msg for msg, _ in rx] for rx in received],
        "done_at": max((rx[-1][1] if len(rx) == N_MSGS else -1)
                       for rx in received),
        "transfers": sum(c.stats.transfers for pair in lanes for c in pair),
        "stall_cycles": sum(c.stats.stall_cycles
                            for pair in lanes for c in pair),
    }


def _fabric_runner(params, seed):
    sim, received, lanes = _build_fabric(
        params["capacity"], params["stall_probability"], seed)
    sim.run(until=(HORIZON_CYCLES - 1) * PERIOD)
    return _record(received, lanes)


def _fabric_build(base_params, base_seed):
    sim, received, lanes = _build_fabric(2, 0.0, base_seed)
    return WarmSession(sim=sim,
                       context={"received": received, "lanes": lanes})


def _fabric_run(session, params, seed):
    lanes = session.context["lanes"]
    for up, down in lanes:
        up.capacity = params["capacity"]
        down.capacity = params["capacity"]
    if params["stall_probability"] > 0.0:
        lanes[0][1].set_stall(params["stall_probability"], seed=seed)
    session.sim.run(until=(HORIZON_CYCLES - 1) * PERIOD)
    return _record(session.context["received"], lanes)


register_sweep(SweepSpec(
    "warm_bench_fabric", "bench",
    space=lambda **kw: [],
    runner=_fabric_runner,
    batch=BatchAdapter(
        safe_params=frozenset({"capacity", "stall_probability", "trial"}),
        base_params=lambda params: {},
        base_seed=lambda params, seed: 0,
        build=_fabric_build,
        run=_fabric_run,
    )))


def _space():
    """4 caps x 5 stall points x 10 trials = 200 structurally-shared."""
    return [
        SweepPoint("warm_bench_fabric",
                   {"capacity": cap, "stall_probability": p, "trial": t},
                   seed=9000 + 31 * t + int(p * 100),
                   backend="compiled")
        for cap in (1, 2, 4, 8)
        for p in (0.0, 0.02, 0.05, 0.08, 0.1)
        for t in range(10)
    ]


def test_bench_warm_sweep_speedup(benchmark, save_result):
    points = _space()
    assert len(points) >= 200
    reset_sessions()

    t0 = time.perf_counter()
    fresh = run_sweep(points, jobs=1, telemetry=False)
    fresh_wall = time.perf_counter() - t0
    assert fresh.errors == 0

    t0 = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: run_sweep(points, jobs=1, warm=True),
        rounds=1, iterations=1)
    warm_wall = time.perf_counter() - t0
    assert warm.errors == 0
    assert warm.canonical() == fresh.canonical()
    assert warm.warm_points == len(points)
    assert warm.warm_groups == 1
    assert not warm.fallback_reasons
    # Every lane must have flowed end to end for the comparison to
    # mean anything (a wedged fabric would "win" by doing nothing).
    assert all(rx == [list(range(N_MSGS))] * LANES
               for rx in (r["received"] for r in warm.results))

    speedup = fresh_wall / warm_wall
    table = "\n".join([
        f"points: {len(points)} (1 structural base, {LANES}-lane fabric, "
        f"compiled backend)",
        f"fresh per-point (jobs=1): {fresh_wall:.2f}s | {fresh.summary()}",
        f"warm batched (jobs=1): {warm_wall:.2f}s | {warm.summary()}",
        f"speedup: {speedup:.1f}x",
    ])
    save_result("warm_sweep", table)
    if _usable_cpus() < 4:
        pytest.skip(f"recorded table only ({_usable_cpus()} CPUs): "
                    f"speedup gate needs an unloaded 4-CPU runner")
    assert speedup >= 3.0, (
        f"warm speedup {speedup:.1f}x < 3x "
        f"(fresh {fresh_wall:.2f}s, warm {warm_wall:.2f}s)")
