"""Figure 6: SystemC-performance-model speedup vs elapsed-cycle error
on six SoC-level tests.

Paper result: 20-30x wall-clock speedup with < 3 % cycle error.  Each
test runs the full prototype SoC twice — fast mode (the performance
model) and rtl mode (signal-level links + per-unit netlist activity) —
with bit-exact output checks in both.
"""

import pytest

from repro.experiments import format_figure6, run_fig6_test
from repro.experiments.fig6_soc import fig6_workloads_small

_POINTS = []


@pytest.mark.parametrize("workload", fig6_workloads_small(),
                         ids=lambda w: w.name)
def test_bench_fig6_workload(benchmark, workload):
    """One SoC-level test, fast vs RTL."""
    point = benchmark.pedantic(lambda: run_fig6_test(workload),
                               rounds=1, iterations=1)
    _POINTS.append(point)
    # Shape assertions per point; headline band checked in aggregate.
    assert point.speedup > 8
    assert point.cycle_error < 0.05


def test_bench_fig6_aggregate(benchmark, save_result):
    """Aggregate the six points into the Figure 6 table."""
    assert len(_POINTS) == 6, "run the per-workload benches first"
    table = benchmark.pedantic(lambda: format_figure6(_POINTS),
                               rounds=1, iterations=1)
    save_result("fig6_perf_accuracy", table)
    speedups = [p.speedup for p in _POINTS]
    errors = [p.cycle_error for p in _POINTS]
    # Paper band: 20-30x speedup, < 3 % error.  Allow scale effects at
    # the reduced workload sizes used here.
    assert max(errors) < 0.05
    assert sum(speedups) / len(speedups) > 12
    assert max(speedups) > 18
