"""Figure 3: cycles/transaction of the arbitrated crossbar, three models.

Paper result: RTL and the sim-accurate model coincide at every port
count; the signal-accurate model's cycles grow with the number of ports
(to ~20 cycles/txn at 16 ports in the paper; steeper here because our
signal-accurate routine pays a delayed operation on both pop and push).
"""

import pytest

from repro.experiments import figure3, format_figure3

PORTS = (2, 4, 8, 16)
TXNS = 60


@pytest.fixture(scope="module")
def fig3_points():
    return figure3(ports=PORTS, txns_per_port=TXNS)


def test_bench_figure3(benchmark, fig3_points, save_result):
    """Regenerate Figure 3 and assert its qualitative shape."""
    # Benchmark the cheap part (the sim-accurate series) for a stable
    # timing number; the full figure was generated once in the fixture.
    from repro.experiments import run_crossbar_accuracy

    benchmark.pedantic(
        lambda: run_crossbar_accuracy("sim-accurate", 8, txns_per_port=TXNS),
        rounds=1, iterations=1,
    )
    table = format_figure3(fig3_points)
    save_result("fig3_crossbar_accuracy", table)

    by = {(p.model, p.n_ports): p.cycles_per_transaction for p in fig3_points}
    for n in PORTS:
        # sim-accurate matches RTL at every port count (paper's claim).
        assert abs(by[("sim-accurate", n)] - by[("rtl", n)]) \
            / by[("rtl", n)] < 0.10
    # signal-accurate error grows with ports.
    sa = [by[("signal-accurate", n)] for n in PORTS]
    assert sa == sorted(sa)
    assert sa[-1] > 4 * by[("rtl", 16)]
    assert sa[-1] > 3 * sa[0]
