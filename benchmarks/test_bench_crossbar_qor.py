"""Section 2.4 case study: src-loop vs dst-loop crossbar QoR.

Paper result: 25 % area penalty for the src-loop coding of a 32-lane
32-bit crossbar, with significantly longer HLS compile times and worse
scaling to larger N.
"""

from repro.experiments import (
    crossbar_clock_sweep,
    crossbar_qor_sweep,
    format_qor_table,
)


def test_bench_crossbar_lane_sweep(benchmark, save_result):
    points = benchmark.pedantic(
        lambda: crossbar_qor_sweep(lanes=(8, 16, 32, 64)),
        rounds=1, iterations=1)
    save_result("crossbar_qor_lanes", format_qor_table(points))
    paper_config = next(p for p in points if p.lanes == 32)
    assert 0.15 <= paper_config.area_penalty <= 0.45  # paper: 25 %
    assert paper_config.compile_ratio > 1.5
    # Penalty grows with N (scalability claim).
    assert points[-1].area_penalty > points[0].area_penalty


def test_bench_crossbar_clock_ablation(benchmark, save_result):
    """Ablation: the penalty decomposes into priority logic (always)
    plus pipeline registers/control (only under tight clocks)."""
    points = benchmark.pedantic(crossbar_clock_sweep, rounds=1, iterations=1)
    save_result("crossbar_qor_clock", format_qor_table(points))
    tight = points[0]
    relaxed = points[-1]
    assert tight.area_penalty > relaxed.area_penalty
    assert relaxed.area_penalty > 0.10  # comparators never go away
    assert tight.src_latency > relaxed.src_latency
