"""Sweep-engine scaling: parallel speedup, serial identity, warm cache.

Three claims about ``repro.sweep`` on the stall-verification sweep
(40 independent seeded trials):

* a ``--jobs 4`` run is at least 2x faster than serial wall-clock
  (requires >= 4 usable CPUs; skipped on smaller machines where the OS
  cannot physically run 4 workers at once),
* the parallel run's merged, ordered report is **bit-identical** to the
  serial run's under the canonical serialization (wall-clock fields
  excluded, everything else compared byte for byte),
* a warm-cache rerun completes in < 10 % of the cold run's wall-clock.
"""

import os
import time

import pytest

from repro.experiments.stall_verification import sweep_space
from repro.sweep import ResultCache, run_sweep


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _space():
    return sweep_space()  # 4 probabilities x 10 trials = 40 points


def test_bench_sweep_parallel_identical_to_serial(benchmark, save_result):
    points = _space()
    serial = run_sweep(points, jobs=1)
    parallel = benchmark.pedantic(
        lambda: run_sweep(points, jobs=4), rounds=1, iterations=1)
    assert serial.executed == parallel.executed == len(points)
    assert serial.errors == parallel.errors == 0
    # The whole deterministic content — per-point results plus the
    # merged ordered telemetry report — must match byte for byte.
    assert serial.canonical() == parallel.canonical()
    save_result("sweep_scaling",
                serial.summary() + "\n" + parallel.summary())


@pytest.mark.skipif(_usable_cpus() < 4,
                    reason="needs >= 4 CPUs for a meaningful 4-job speedup")
def test_bench_sweep_scaling_speedup(benchmark):
    points = _space()
    t0 = time.perf_counter()
    serial = run_sweep(points, jobs=1)
    serial_wall = time.perf_counter() - t0

    parallel = benchmark.pedantic(
        lambda: run_sweep(points, jobs=4), rounds=1, iterations=1)
    assert serial.errors == parallel.errors == 0
    speedup = serial_wall / parallel.wall_seconds
    assert speedup >= 2.0, (
        f"--jobs 4 speedup {speedup:.2f}x < 2x "
        f"(serial {serial_wall:.2f}s, parallel {parallel.wall_seconds:.2f}s)")


def test_bench_sweep_warm_cache_rerun(benchmark, tmp_path):
    points = _space()
    cache_dir = str(tmp_path / "cache")

    t0 = time.perf_counter()
    cold = run_sweep(points, jobs=1, cache=ResultCache(cache_dir))
    cold_wall = time.perf_counter() - t0
    assert cold.executed == len(points) and cold.cache_hits == 0

    warm = benchmark.pedantic(
        lambda: run_sweep(points, jobs=1, cache=ResultCache(cache_dir)),
        rounds=1, iterations=1)
    assert warm.cache_hits == len(points) and warm.executed == 0
    assert warm.canonical() == cold.canonical()
    assert warm.wall_seconds < 0.10 * cold_wall, (
        f"warm rerun {warm.wall_seconds:.3f}s not < 10% of "
        f"cold {cold_wall:.3f}s")
