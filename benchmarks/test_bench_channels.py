"""Table 1 / Figure 2 micro-benchmarks: throughput of every channel
kind in both the fast (sim-accurate) and signal-level models, plus the
wormhole vs store-and-forward router ablation (Table 2).
"""

import pytest

from repro.connections import (
    Buffer,
    BufferSignal,
    Bypass,
    BypassSignal,
    Combinational,
    CombinationalSignal,
    In,
    Out,
    Pipeline,
    PipelineSignal,
    stream_consumer,
    stream_producer,
)
from repro.kernel import Simulator
from repro.noc import Mesh

N_MSGS = 300


def fast_stream(factory):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = factory(sim, clk)
    out, inp = Out(chan), In(chan)
    received = []

    def producer():
        for i in range(N_MSGS):
            yield from out.push(i)

    def consumer():
        for _ in range(N_MSGS):
            received.append((yield from inp.pop()))

    sim.add_thread(producer(), clk, name="p")
    sim.add_thread(consumer(), clk, name="c")
    sim.run(until=N_MSGS * 200)
    assert received == list(range(N_MSGS))


def signal_stream(cls, **kw):
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = cls(sim, clk, name="ch", **kw)
    sink = []
    done = {}
    sim.add_thread(stream_producer(chan.enq, range(N_MSGS)), clk, name="p")
    sim.add_thread(stream_consumer(chan.deq, sink, count=N_MSGS, done=done),
                   clk, name="c")
    sim.run(until=N_MSGS * 200)
    assert sink == list(range(N_MSGS))


@pytest.mark.parametrize("factory", [Combinational, Bypass, Pipeline, Buffer],
                         ids=lambda f: f.__name__)
def test_bench_fast_channel(benchmark, factory):
    benchmark.pedantic(lambda: fast_stream(factory), rounds=3, iterations=1)


@pytest.mark.parametrize("cls,kw", [
    (CombinationalSignal, {}),
    (BypassSignal, {"capacity": 1}),
    (PipelineSignal, {"capacity": 1}),
    (BufferSignal, {"capacity": 2}),
], ids=lambda x: getattr(x, "__name__", ""))
def test_bench_signal_channel(benchmark, cls, kw):
    if cls is CombinationalSignal:
        benchmark.pedantic(
            lambda: signal_stream_comb(), rounds=3, iterations=1)
    else:
        benchmark.pedantic(lambda: signal_stream(cls, **kw), rounds=3,
                           iterations=1)


def signal_stream_comb():
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    chan = CombinationalSignal(sim, clk)
    sink = []
    sim.add_thread(stream_producer(chan.enq, range(N_MSGS)), clk, name="p")
    sim.add_thread(stream_consumer(chan.deq, sink, count=N_MSGS), clk,
                   name="c")
    sim.run(until=N_MSGS * 200)
    assert sink == list(range(N_MSGS))


def mesh_drain_time(router: str) -> int:
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    mesh = Mesh(sim, clk, width=4, height=4, router=router)
    for src in range(16):
        mesh.ni(src).send((src + 5) % 16, [f"m{src}f{j}" for j in range(6)])
    while (sum(ni.messages_received for ni in mesh.nis) < 16
           and sim.now < 5_000_000):
        sim.run(max_steps=100)
    assert sum(ni.messages_received for ni in mesh.nis) == 16
    return max(ni.last_arrival_time or 0 for ni in mesh.nis)


def test_bench_router_ablation(benchmark, save_result):
    """Wormhole routing beats store-and-forward on drain latency."""
    whvc = benchmark.pedantic(lambda: mesh_drain_time("whvc"),
                              rounds=1, iterations=1)
    sf = mesh_drain_time("sf")
    save_result("router_ablation",
                f"4x4 mesh, 16 six-flit packets, drain time (ticks)\n"
                f"  WHVC wormhole     : {whvc}\n"
                f"  store-and-forward : {sf}")
    assert whvc < sf
